//! Compiled rule programs and repair-plan memoization.
//!
//! Real dirty data is dominated by *repeated* evidence projections: fixing
//! rules match on exact constants, so two tuples that agree on the
//! attributes Σ touches receive byte-identical fix sequences. This module
//! exploits that redundancy twice:
//!
//! * [`RuleProgram`] — Σ compiled once: rules are grouped by their
//!   evidence-attribute set `X` and each group becomes a hash-dispatch
//!   table keyed by the tuple's projection on `X`, so finding every rule
//!   whose evidence matches costs **one probe per distinct X-set** instead
//!   of one counter update per `(attribute, value)` cell. The program also
//!   computes the *relevant attribute closure* of Σ — every attribute any
//!   rule reads (`X`, and `B` for the negative patterns) or writes (`B`) —
//!   so each tuple reduces to a compact [`TupleSignature`].
//! * [`PlanCache`] — signature → [`RepairPlan`] memoization. The first
//!   tuple with a given signature runs the compiled engine and records the
//!   ordered fix list (plus the assured-set delta); every later tuple with
//!   the same signature replays the plan: one hash lookup, zero rule
//!   evaluation. Sharded interior state lets the parallel driver share
//!   hits across threads; [`PlanCache::unbounded`] is the single-shard
//!   (uncontended, effectively lock-free) fast path for sequential
//!   drivers, and [`PlanCache::bounded_lru`] gives the streaming driver an
//!   exact least-recently-used eviction bound.
//!
//! **Why memoization is sound.** An engine run on a tuple `t` reads only
//! `t[A]` for `A` in the relevant closure (evidence via `X`, negative
//! patterns via `B`) and writes only `B` attributes, which are in the
//! closure too. Two tuples with equal projections on the closure therefore
//! drive the engine through the identical decision sequence, including the
//! recorded `old` values and `round` stamps — so a replayed plan reproduces
//! the *exact* [`crate::provenance::ProvenanceLedger`] the uncached driver
//! emits, which is what the ledger-equality property tests assert.
//!
//! **Exact driver emulation.** Plans carry engine-specific `round` values
//! (`cRepair`: chase round; `lRepair`: queue-pop index) and application
//! order, so the compiled engine comes in two flavors
//! ([`CompiledEngine::Chase`] / [`CompiledEngine::Linear`]) that replicate
//! the respective uncached algorithm's application order rule-for-rule:
//!
//! * the chase flavor sweeps matched candidates in ascending rule id per
//!   round, splicing rules enabled mid-round into the unscanned suffix —
//!   exactly where `cRepair`'s in-order rescan would encounter them;
//! * the linear flavor seeds its candidate stack in `(max evidence
//!   attribute, rule id)` order — the order in which `lRepair`'s cell scan
//!   saturates hash counters — and pushes newly enabled rules in id order
//!   after each update, matching the inverted-list traversal.
//!
//! A `PlanCache` must only be shared between runs using the same rule set
//! *and* the same engine flavor: plans are keyed by signature alone.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fxhash::FxHashMap;
use obs::{NoopObserver, RepairObserver};
use relation::{AttrId, AttrSet, Symbol, Table};

use crate::repair::{CellUpdate, RepairOutcome};
use crate::ruleset::{RuleId, RuleSet};
use crate::semantics::{matches, properly_applicable};

/// Which uncached driver a compiled run replicates (and therefore which
/// `round` stamps and application order its plans carry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompiledEngine {
    /// Replicate `cRepair` (Fig 6): `round` = 1-based chase round.
    Chase,
    /// Replicate `lRepair` (Fig 7): `round` = 1-based queue-pop index.
    Linear,
}

/// One evidence group: all rules sharing the same evidence-attribute set
/// `X`, dispatched by the tuple's projection on `X`.
#[derive(Debug, Clone)]
struct RuleGroup {
    /// The shared evidence attributes, sorted ascending.
    attrs: Vec<AttrId>,
    /// `attrs.last()` — where `lRepair`'s cell scan saturates the counter.
    max_attr: AttrId,
    /// Projection on `attrs` → rules whose full evidence equals it, in
    /// rule-id order.
    table: FxHashMap<Box<[Symbol]>, Vec<RuleId>>,
}

impl RuleGroup {
    /// All rules whose evidence pattern matches `row`, in one hash probe.
    #[inline]
    fn probe<'g>(&'g self, row: &[Symbol], buf: &mut Vec<Symbol>) -> &'g [RuleId] {
        buf.clear();
        buf.extend(self.attrs.iter().map(|a| row[a.index()]));
        self.table
            .get(buf.as_slice())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// A rule set compiled for repeated per-tuple evaluation: evidence-group
/// dispatch tables plus the relevant attribute closure. Immutable and
/// shareable across threads.
#[derive(Debug, Clone)]
pub struct RuleProgram {
    groups: Vec<RuleGroup>,
    /// `attr.index()` → indices of groups whose `X` contains the attribute
    /// (the groups to re-probe after that attribute is updated).
    groups_by_attr: Vec<Vec<u32>>,
    /// Relevant attribute closure, sorted ascending — the signature layout.
    relevant_attrs: Vec<AttrId>,
    relevant: AttrSet,
    num_rules: usize,
}

impl RuleProgram {
    /// Compile `rules` once; reuse across tuples, tables and threads.
    pub fn compile(rules: &RuleSet) -> Self {
        let arity = rules.schema().arity();
        let mut by_xset: FxHashMap<AttrSet, usize> = FxHashMap::default();
        let mut groups: Vec<RuleGroup> = Vec::new();
        let mut relevant = AttrSet::EMPTY;
        for (id, rule) in rules.iter() {
            relevant.union_with(rule.assured_delta());
            let gi = *by_xset.entry(rule.x_set()).or_insert_with(|| {
                groups.push(RuleGroup {
                    attrs: rule.x().to_vec(),
                    max_attr: *rule.x().last().expect("evidence is non-empty"),
                    table: FxHashMap::default(),
                });
                groups.len() - 1
            });
            // `x()` is sorted and `tp()` is parallel to it, so the rule's
            // evidence pattern *is* the projection key.
            groups[gi]
                .table
                .entry(rule.tp().to_vec().into_boxed_slice())
                .or_default()
                .push(id);
        }
        let mut groups_by_attr = vec![Vec::new(); arity];
        for (gi, g) in groups.iter().enumerate() {
            for a in &g.attrs {
                groups_by_attr[a.index()].push(gi as u32);
            }
        }
        RuleProgram {
            groups,
            groups_by_attr,
            relevant_attrs: relevant.iter().collect(),
            relevant,
            num_rules: rules.len(),
        }
    }

    /// The tuple's projection on the relevant attribute closure — the plan
    /// cache key. Two rows with equal signatures are repaired identically.
    #[inline]
    pub fn signature(&self, row: &[Symbol]) -> TupleSignature {
        TupleSignature(self.relevant_attrs.iter().map(|a| row[a.index()]).collect())
    }

    /// Gather every row's signature into `flat` as a dense row-major
    /// `rows × closure-width` matrix: one tight pass per relevant
    /// attribute instead of one strided row walk per tuple. Row `i`'s
    /// signature is `flat[i*w..(i+1)*w]` for `w = relevant_attrs().len()`
    /// — the same projection [`RuleProgram::signature`] computes, laid
    /// out for the columnar group-by driver.
    pub fn signatures_batch<C: AsRef<[Symbol]>>(
        &self,
        columns: &[C],
        rows: usize,
        flat: &mut Vec<Symbol>,
    ) {
        let w = self.relevant_attrs.len();
        flat.clear();
        flat.resize(rows * w, Symbol(0));
        for (j, attr) in self.relevant_attrs.iter().enumerate() {
            let col = columns[attr.index()].as_ref();
            for (i, &sym) in col[..rows].iter().enumerate() {
                flat[i * w + j] = sym;
            }
        }
    }

    /// Fingerprint every row's relevant-attribute projection into
    /// `hashes`: one sequential pass per relevant column folds each cell
    /// into the row's running 64-bit hash (the fxhash rotate–xor–multiply
    /// step over an FNV offset seed). Two rows with equal signatures
    /// always hash equal; the converse is *not* guaranteed, so callers
    /// grouping by fingerprint must confirm candidates by comparing the
    /// projected cells — the columnar driver keeps exactness that way
    /// while avoiding a per-row signature materialization.
    pub fn signature_hashes<C: AsRef<[Symbol]>>(
        &self,
        columns: &[C],
        rows: usize,
        hashes: &mut Vec<u64>,
    ) {
        hashes.clear();
        hashes.resize(rows, 0xcbf2_9ce4_8422_2325);
        for attr in &self.relevant_attrs {
            let col = columns[attr.index()].as_ref();
            for (h, &sym) in hashes.iter_mut().zip(col[..rows].iter()) {
                *h = (h.rotate_left(5) ^ u64::from(sym.0)).wrapping_mul(0x517c_c1b7_2722_0a95);
            }
        }
    }

    /// The relevant attribute closure: every attribute some rule reads or
    /// writes.
    pub fn relevant(&self) -> AttrSet {
        self.relevant
    }

    /// The relevant attribute closure as a sorted slice — the signature
    /// layout ([`RuleProgram::signatures_batch`]'s column order).
    pub fn relevant_attrs(&self) -> &[AttrId] {
        &self.relevant_attrs
    }

    /// Number of evidence groups (distinct X-sets) — the probes per round.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of rules the program was compiled from.
    pub fn num_rules(&self) -> usize {
        self.num_rules
    }
}

/// A tuple's projection on the relevant attribute closure; the exact
/// projection (not a hash of it), so cache lookups cannot collide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TupleSignature(Box<[Symbol]>);

impl TupleSignature {
    /// Build a signature from an already-gathered projection (a row of
    /// [`RuleProgram::signatures_batch`]'s matrix).
    pub(crate) fn from_slice(symbols: &[Symbol]) -> Self {
        TupleSignature(symbols.into())
    }

    /// The projected symbols, in relevant-attribute order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.0
    }
}

/// A memoized repair: the ordered fix list one engine run produced for a
/// signature, replayable on any row with that signature.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairPlan {
    /// Applied updates in application order (`row` field 0; drivers
    /// re-index), with the engine's original `round` stamps.
    updates: Vec<CellUpdate>,
    /// Chase rounds / queue pops of the original run — replayed into
    /// `tuple_done` so cached and uncached metrics agree.
    rounds: usize,
    /// Union of the applied rules' assured sets (`X ∪ {B}` per rule).
    assured: AttrSet,
}

impl RepairPlan {
    pub(crate) fn new(updates: Vec<CellUpdate>, rounds: usize, assured: AttrSet) -> Self {
        RepairPlan {
            updates,
            rounds,
            assured,
        }
    }

    /// The planned updates, in application order.
    pub fn updates(&self) -> &[CellUpdate] {
        &self.updates
    }

    /// Chase rounds / queue pops of the engine run that produced the plan.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The assured-set delta the plan establishes.
    pub fn assured(&self) -> AttrSet {
        self.assured
    }

    /// True when the plan applies no fix (a clean signature).
    pub fn is_clean(&self) -> bool {
        self.updates.is_empty()
    }

    /// Apply the plan to `row`, emitting the same `rule_applied` /
    /// `tuple_done` hook sequence the original engine run did, plus one
    /// `plan_replayed` per fix so attribution can tell memoized
    /// applications from live evaluations. Returns the updates (`row`
    /// field 0) for the driver to re-index.
    fn replay<O: RepairObserver>(&self, row: &mut [Symbol], observer: &O) -> Vec<CellUpdate> {
        for u in &self.updates {
            debug_assert_eq!(
                row[u.attr.index()],
                u.old,
                "plan replayed on a row with a different signature"
            );
            row[u.attr.index()] = u.new;
            observer.rule_applied(u.rule.index(), u.attr.index());
            observer.plan_replayed(u.rule.index(), u.attr.index());
        }
        observer.tuple_done(self.rounds, self.updates.len());
        self.updates.clone()
    }
}

/// Hit/miss/eviction counters and current size of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a plan.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Plans currently cached.
    pub entries: usize,
}

#[derive(Debug)]
struct CacheEntry {
    plan: Arc<RepairPlan>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<TupleSignature, CacheEntry>,
    /// Per-shard logical clock; bumped on every lookup/insert, stamped
    /// into entries for exact LRU eviction.
    tick: u64,
}

/// Signature → plan memo shared by the compiled drivers.
///
/// Interior state is sharded (`N` power-of-two shards, each behind its own
/// mutex) so parallel workers share hits with minimal contention; the
/// single-shard constructors serve the sequential drivers, where the one
/// uncontended lock costs a single atomic exchange per probe. Capacity, if
/// bounded, evicts the least-recently-used entry per shard.
#[derive(Debug)]
pub struct PlanCache {
    shards: Box<[Mutex<Shard>]>,
    /// `64 - log2(shards.len())`; shard index = top hash bits.
    shift: u32,
    shard_capacity: Option<usize>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    fn with_shards_and_capacity(shards: usize, capacity: Option<usize>) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let shard_capacity = capacity.map(|c| c.max(1).div_ceil(shards));
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shift: 64 - shards.trailing_zeros(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Single-shard, no capacity bound — the sequential fast path.
    pub fn unbounded() -> Self {
        PlanCache::with_shards_and_capacity(1, None)
    }

    /// `shards` (rounded up to a power of two) mutex-guarded shards, no
    /// capacity bound — for the parallel driver; size to ~4× the worker
    /// count.
    pub fn sharded(shards: usize) -> Self {
        PlanCache::with_shards_and_capacity(shards, None)
    }

    /// Single shard holding at most `capacity` plans with exact
    /// least-recently-used eviction — the streaming driver's bound.
    pub fn bounded_lru(capacity: usize) -> Self {
        PlanCache::with_shards_and_capacity(1, Some(capacity))
    }

    /// Sharded *and* capacity-bounded (capacity split evenly across
    /// shards, LRU within each shard).
    pub fn sharded_bounded(shards: usize, capacity: usize) -> Self {
        PlanCache::with_shards_and_capacity(shards, Some(capacity))
    }

    #[inline]
    fn shard_for(&self, sig: &TupleSignature) -> usize {
        if self.shards.len() == 1 {
            0
        } else {
            (fxhash::hash64(&sig.0) >> self.shift) as usize
        }
    }

    /// Look a signature up, bumping its recency on hit.
    pub fn get(&self, sig: &TupleSignature) -> Option<Arc<RepairPlan>> {
        let mut shard = self.shards[self.shard_for(sig)].lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(sig) {
            Some(entry) => {
                entry.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.plan))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a plan, evicting the shard's least-recently-used entry if at
    /// capacity. Returns the number of evictions (0 or 1).
    pub fn insert(&self, sig: TupleSignature, plan: RepairPlan) -> usize {
        let mut shard = self.shards[self.shard_for(&sig)].lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        let mut evicted = 0;
        if let Some(cap) = self.shard_capacity {
            if shard.map.len() >= cap && !shard.map.contains_key(&sig) {
                // Exact LRU: ticks are unique per shard, so the minimum is
                // deterministic. Linear scan is fine — bounded caches are
                // small by construction and eviction is the rare path.
                if let Some(victim) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    shard.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    evicted = 1;
                }
            }
        }
        shard.map.insert(
            sig,
            CacheEntry {
                plan: Arc::new(plan),
                last_used: tick,
            },
        );
        evicted
    }

    /// Plans currently cached, summed over shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters and current size.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

/// Reusable per-thread scratch for the compiled engines: token-stamped
/// rule marks (O(1) clearing between tuples), the candidate worklist and
/// the probe-key buffer.
#[derive(Debug, Default)]
pub struct CompiledScratch {
    /// Globally unique, monotonically increasing stamps; a mark array cell
    /// is "set" iff it equals the current token, so clearing is free.
    token_gen: u64,
    tuple_token: u64,
    used: Vec<u64>,
    queued: Vec<u64>,
    worklist: Vec<RuleId>,
    fresh: Vec<RuleId>,
    seed: Vec<(AttrId, RuleId)>,
    proj: Vec<Symbol>,
}

impl CompiledScratch {
    /// Create scratch space for a program over `num_rules` rules.
    pub fn new(num_rules: usize) -> Self {
        CompiledScratch {
            used: vec![0; num_rules],
            queued: vec![0; num_rules],
            ..CompiledScratch::default()
        }
    }

    fn begin_tuple(&mut self, num_rules: usize) {
        if self.used.len() != num_rules {
            self.used = vec![0; num_rules];
            self.queued = vec![0; num_rules];
        }
        self.token_gen += 1;
        self.tuple_token = self.token_gen;
    }

    fn next_token(&mut self) -> u64 {
        self.token_gen += 1;
        self.token_gen
    }
}

/// The chase flavor: replicates `cRepair`'s application order exactly.
/// Returns the updates (`row` field 0) and the number of chase rounds.
fn chase_compiled<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    scratch: &mut CompiledScratch,
    row: &mut [Symbol],
    observer: &O,
) -> (Vec<CellUpdate>, usize) {
    scratch.begin_tuple(program.num_rules);
    let tuple_token = scratch.tuple_token;
    let mut assured = AttrSet::EMPTY;
    let mut updates = Vec::new();
    let mut rounds = 0usize;
    let timing = observer.wants_rule_timing();
    loop {
        rounds += 1;
        observer.chase_round();
        let round_token = scratch.next_token();
        scratch.worklist.clear();
        for g in &program.groups {
            let hits = g.probe(row, &mut scratch.proj);
            observer.plan_probe(hits.len());
            for &rid in hits {
                if scratch.used[rid.index()] != tuple_token {
                    scratch.queued[rid.index()] = round_token;
                    scratch.worklist.push(rid);
                }
            }
        }
        scratch.worklist.sort_unstable();
        let mut applied = false;
        let mut pos = 0usize;
        while pos < scratch.worklist.len() {
            let rid = scratch.worklist[pos];
            pos += 1;
            if scratch.used[rid.index()] == tuple_token {
                continue;
            }
            let rule = rules.rule(rid);
            let t0 = timing.then(std::time::Instant::now);
            // An earlier application this round may have broken the
            // evidence that matched at probe time — re-verify, exactly as
            // cRepair's rescan would find the rule non-matching.
            if assured.contains(rule.b()) || !matches(rule, row) {
                observer.rule_rejected(rid.index());
                if let Some(t0) = t0 {
                    observer.rule_latency(rid.index(), t0.elapsed().as_nanos() as u64);
                }
                continue;
            }
            debug_assert!(properly_applicable(rule, row, assured));
            let b = rule.b();
            let old = row[b.index()];
            row[b.index()] = rule.fact();
            assured.union_with(rule.assured_delta());
            scratch.used[rid.index()] = tuple_token;
            applied = true;
            observer.rule_applied(rid.index(), b.index());
            if let Some(t0) = t0 {
                observer.rule_latency(rid.index(), t0.elapsed().as_nanos() as u64);
            }
            updates.push(CellUpdate {
                row: 0,
                attr: b,
                old,
                new: rule.fact(),
                rule: rid,
                round: rounds as u32,
            });
            // Rules enabled by this update whose id is *higher* than the
            // current one are still ahead of cRepair's in-order sweep this
            // round: splice them into the sorted unscanned suffix. Lower
            // ids are picked up by the next round's probes, as in Fig 6.
            for &gi in &program.groups_by_attr[b.index()] {
                let g = &program.groups[gi as usize];
                let hits = g.probe(row, &mut scratch.proj);
                observer.plan_probe(hits.len());
                for &nrid in hits {
                    if nrid > rid
                        && scratch.used[nrid.index()] != tuple_token
                        && scratch.queued[nrid.index()] != round_token
                    {
                        scratch.queued[nrid.index()] = round_token;
                        let at = pos + scratch.worklist[pos..].partition_point(|&x| x < nrid);
                        scratch.worklist.insert(at, nrid);
                    }
                }
            }
        }
        if !applied {
            break;
        }
    }
    (updates, rounds)
}

/// The linear flavor: replicates `lRepair`'s application order exactly.
/// Returns the updates (`row` field 0) and the number of queue pops.
fn linear_compiled<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    scratch: &mut CompiledScratch,
    row: &mut [Symbol],
    observer: &O,
) -> (Vec<CellUpdate>, usize) {
    scratch.begin_tuple(program.num_rules);
    let tuple_token = scratch.tuple_token;
    // Seed: one probe per group. lRepair's cell scan saturates a matched
    // rule's counter at its largest evidence attribute and walks each
    // inverted list in rule-id order, so sorting candidates by
    // (max evidence attr, rule id) reproduces its enqueue order.
    scratch.seed.clear();
    for g in &program.groups {
        let hits = g.probe(row, &mut scratch.proj);
        observer.plan_probe(hits.len());
        for &rid in hits {
            scratch.seed.push((g.max_attr, rid));
        }
    }
    scratch.seed.sort_unstable();
    scratch.worklist.clear();
    for &(_, rid) in &scratch.seed {
        scratch.queued[rid.index()] = tuple_token;
        scratch.worklist.push(rid);
    }
    let mut assured = AttrSet::EMPTY;
    let mut updates = Vec::new();
    let mut pops = 0usize;
    let timing = observer.wants_rule_timing();
    while let Some(rid) = scratch.worklist.pop() {
        pops += 1;
        let rule = rules.rule(rid);
        let t0 = timing.then(std::time::Instant::now);
        // Pop-time verification, as in Fig 7 line 10: enqueue order is a
        // filter, not a proof.
        if !properly_applicable(rule, row, assured) {
            observer.rule_rejected(rid.index());
            if let Some(t0) = t0 {
                observer.rule_latency(rid.index(), t0.elapsed().as_nanos() as u64);
            }
            continue;
        }
        let b = rule.b();
        let old = row[b.index()];
        row[b.index()] = rule.fact();
        assured.union_with(rule.assured_delta());
        observer.rule_applied(rid.index(), b.index());
        if let Some(t0) = t0 {
            observer.rule_latency(rid.index(), t0.elapsed().as_nanos() as u64);
        }
        updates.push(CellUpdate {
            row: 0,
            attr: b,
            old,
            new: rule.fact(),
            rule: rid,
            round: pops as u32,
        });
        // Re-probe only the groups reading the updated attribute. A rule
        // that fully matches now and didn't before saturated on this very
        // cell in lRepair, which enqueues fresh-list hits in id order.
        scratch.fresh.clear();
        for &gi in &program.groups_by_attr[b.index()] {
            let g = &program.groups[gi as usize];
            let hits = g.probe(row, &mut scratch.proj);
            observer.plan_probe(hits.len());
            for &nrid in hits {
                if scratch.queued[nrid.index()] != tuple_token {
                    scratch.queued[nrid.index()] = tuple_token;
                    scratch.fresh.push(nrid);
                }
            }
        }
        scratch.fresh.sort_unstable();
        scratch.worklist.extend_from_slice(&scratch.fresh);
    }
    (updates, pops)
}

#[inline]
pub(crate) fn run_engine<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    scratch: &mut CompiledScratch,
    row: &mut [Symbol],
    observer: &O,
) -> (Vec<CellUpdate>, usize) {
    match engine {
        CompiledEngine::Chase => chase_compiled(rules, program, scratch, row, observer),
        CompiledEngine::Linear => linear_compiled(rules, program, scratch, row, observer),
    }
}

/// Repair one row with the compiled engine, consulting `cache` when
/// present: a hit replays the memoized plan, a miss runs the engine and
/// memoizes the result. Returns the updates (`row` field 0; drivers
/// re-index). Used by every compiled driver — sequential, parallel and
/// streaming.
pub fn repair_row_compiled<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    scratch: &mut CompiledScratch,
    row: &mut [Symbol],
    observer: &O,
) -> Vec<CellUpdate> {
    let Some(cache) = cache else {
        let (updates, rounds) = run_engine(rules, program, engine, scratch, row, observer);
        observer.tuple_done(rounds, updates.len());
        return updates;
    };
    let sig = program.signature(row);
    if let Some(plan) = cache.get(&sig) {
        observer.plan_cache_lookup(true);
        return plan.replay(row, observer);
    }
    observer.plan_cache_lookup(false);
    let (updates, rounds) = run_engine(rules, program, engine, scratch, row, observer);
    observer.tuple_done(rounds, updates.len());
    let assured = updates.iter().fold(AttrSet::EMPTY, |acc, u| {
        acc.union(rules.rule(u.rule).assured_delta())
    });
    for _ in 0..cache.insert(sig, RepairPlan::new(updates.clone(), rounds, assured)) {
        observer.plan_cache_evicted();
    }
    updates
}

/// Repair one tuple with the compiled chase engine (no cache). Byte-
/// compatible with [`crate::repair::crepair_tuple`].
pub fn crepair_compiled_tuple(
    rules: &RuleSet,
    program: &RuleProgram,
    scratch: &mut CompiledScratch,
    row: &mut [Symbol],
) -> Vec<CellUpdate> {
    repair_row_compiled(
        rules,
        program,
        CompiledEngine::Chase,
        None,
        scratch,
        row,
        &NoopObserver,
    )
}

/// Repair one tuple with the compiled linear engine (no cache). Byte-
/// compatible with [`crate::repair::lrepair_tuple`].
pub fn lrepair_compiled_tuple(
    rules: &RuleSet,
    program: &RuleProgram,
    scratch: &mut CompiledScratch,
    row: &mut [Symbol],
) -> Vec<CellUpdate> {
    repair_row_compiled(
        rules,
        program,
        CompiledEngine::Linear,
        None,
        scratch,
        row,
        &NoopObserver,
    )
}

/// Table driver over [`repair_row_compiled`]: pass
/// [`CompiledEngine::Chase`] for `cRepair`-identical output and
/// [`CompiledEngine::Linear`] for `lRepair`-identical output, with
/// optional plan memoization.
pub fn compiled_table(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    table: &mut Table,
) -> RepairOutcome {
    compiled_table_observed(rules, program, engine, cache, table, &NoopObserver)
}

/// [`compiled_table`] with observer hooks: the per-tuple hooks of the
/// emulated engine plus `plan_probe`, `plan_cache_lookup`,
/// `plan_cache_evicted`, and one `cell_repaired` per applied update.
pub fn compiled_table_observed<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    table: &mut Table,
    observer: &O,
) -> RepairOutcome {
    assert!(
        rules.schema().same_as(table.schema()),
        "rule set and table must share a schema"
    );
    let mut scratch = CompiledScratch::new(rules.len());
    let mut outcome = RepairOutcome::default();
    for i in 0..table.len() {
        let mut ups = repair_row_compiled(
            rules,
            program,
            engine,
            cache,
            &mut scratch,
            table.row_mut(i),
            observer,
        );
        for (k, u) in ups.iter_mut().enumerate() {
            u.row = i;
            observer.cell_repaired(u.as_fix(k));
        }
        outcome.updates.extend(ups);
    }
    outcome
}

/// Compiled `cRepair` over a table: identical table state, update log and
/// provenance ledger to [`crate::repair::crepair_table`].
pub fn crepair_compiled(
    rules: &RuleSet,
    program: &RuleProgram,
    cache: Option<&PlanCache>,
    table: &mut Table,
) -> RepairOutcome {
    compiled_table(rules, program, CompiledEngine::Chase, cache, table)
}

/// [`crepair_compiled`] with observer hooks.
pub fn crepair_compiled_observed<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    cache: Option<&PlanCache>,
    table: &mut Table,
    observer: &O,
) -> RepairOutcome {
    compiled_table_observed(
        rules,
        program,
        CompiledEngine::Chase,
        cache,
        table,
        observer,
    )
}

/// Compiled `lRepair` over a table: identical table state, update log and
/// provenance ledger to [`crate::repair::lrepair_table`].
pub fn lrepair_compiled(
    rules: &RuleSet,
    program: &RuleProgram,
    cache: Option<&PlanCache>,
    table: &mut Table,
) -> RepairOutcome {
    compiled_table(rules, program, CompiledEngine::Linear, cache, table)
}

/// [`lrepair_compiled`] with observer hooks.
pub fn lrepair_compiled_observed<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    cache: Option<&PlanCache>,
    table: &mut Table,
    observer: &O,
) -> RepairOutcome {
    compiled_table_observed(
        rules,
        program,
        CompiledEngine::Linear,
        cache,
        table,
        observer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::chase::crepair_tuple;
    use crate::repair::linear::{lrepair_tuple, LRepairIndex, LRepairScratch};
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    fn fig8_rules(sy: &mut SymbolTable) -> RuleSet {
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Beijing"), ("conf", "ICDE")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();
        rs
    }

    fn fig1_rows(sy: &mut SymbolTable) -> Vec<Vec<Symbol>> {
        [
            ["George", "China", "Beijing", "Beijing", "SIGMOD"],
            ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
            ["Peter", "China", "Tokyo", "Tokyo", "ICDE"],
            ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
        ]
        .iter()
        .map(|r| r.iter().map(|v| sy.intern(v)).collect())
        .collect()
    }

    #[test]
    fn program_groups_and_closure() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        // X-sets: {country} (φ1, φ2), {capital, city, conf} (φ3),
        // {capital, conf} (φ4).
        assert_eq!(program.num_groups(), 3);
        assert_eq!(program.num_rules(), 4);
        // Relevant closure: everything but `name`.
        let s = schema();
        let expected: Vec<AttrId> = ["country", "capital", "city", "conf"]
            .iter()
            .map(|a| s.attr(a).unwrap())
            .collect();
        let mut expected_sorted = expected.clone();
        expected_sorted.sort();
        assert_eq!(program.relevant_attrs, expected_sorted);
        assert!(!program.relevant().contains(s.attr("name").unwrap()));
    }

    #[test]
    fn signatures_ignore_irrelevant_attributes() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        let a: Vec<Symbol> = ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        let b: Vec<Symbol> = ["Zoe", "China", "Shanghai", "Hongkong", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        let c: Vec<Symbol> = ["Ian", "China", "Hongkong", "Hongkong", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        assert_eq!(program.signature(&a), program.signature(&b));
        assert_ne!(program.signature(&a), program.signature(&c));
    }

    #[test]
    fn both_flavors_match_their_uncached_engine_on_fig1() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        let index = LRepairIndex::build(&rules);
        let mut cscratch = CompiledScratch::new(rules.len());
        let mut lscratch = LRepairScratch::new(rules.len());
        for row in fig1_rows(&mut sy) {
            let mut chase_row = row.clone();
            let mut compiled_row = row.clone();
            let chase_ups = crepair_tuple(&rules, &mut chase_row);
            let compiled_ups =
                crepair_compiled_tuple(&rules, &program, &mut cscratch, &mut compiled_row);
            assert_eq!(chase_ups, compiled_ups, "chase flavor diverged");
            assert_eq!(chase_row, compiled_row);

            let mut linear_row = row.clone();
            let mut compiled_row = row.clone();
            let linear_ups = lrepair_tuple(&rules, &index, &mut lscratch, &mut linear_row);
            let compiled_ups =
                lrepair_compiled_tuple(&rules, &program, &mut cscratch, &mut compiled_row);
            assert_eq!(linear_ups, compiled_ups, "linear flavor diverged");
            assert_eq!(linear_row, compiled_row);
        }
    }

    #[test]
    fn cache_hits_replay_identical_updates() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        let cache = PlanCache::unbounded();
        let mut scratch = CompiledScratch::new(rules.len());
        let dirty: Vec<Symbol> = ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        let mut first = dirty.clone();
        let miss_ups = repair_row_compiled(
            &rules,
            &program,
            CompiledEngine::Linear,
            Some(&cache),
            &mut scratch,
            &mut first,
            &NoopObserver,
        );
        // Same signature, different irrelevant attr: must hit and replay.
        let mut second: Vec<Symbol> = ["Zoe", "China", "Shanghai", "Hongkong", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        let hit_ups = repair_row_compiled(
            &rules,
            &program,
            CompiledEngine::Linear,
            Some(&cache),
            &mut scratch,
            &mut second,
            &NoopObserver,
        );
        assert_eq!(miss_ups, hit_ups);
        assert_eq!(first[1..], second[1..]);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        // The cached plan carries the assured delta of the applied rules.
        let plan = cache.get(&program.signature(&dirty)).unwrap();
        assert_eq!(plan.updates().len(), 2);
        assert!(!plan.is_clean());
        let s = schema();
        assert!(plan.assured().contains(s.attr("capital").unwrap()));
        assert!(plan.assured().contains(s.attr("city").unwrap()));
        assert!(!plan.assured().contains(s.attr("name").unwrap()));
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = PlanCache::bounded_lru(2);
        let sig = |v: u32| TupleSignature(vec![Symbol(v)].into_boxed_slice());
        assert_eq!(cache.insert(sig(1), RepairPlan::default()), 0);
        assert_eq!(cache.insert(sig(2), RepairPlan::default()), 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(&sig(1)).is_some());
        assert_eq!(cache.insert(sig(3), RepairPlan::default()), 1);
        assert!(cache.get(&sig(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&sig(1)).is_some());
        assert!(cache.get(&sig(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn sharded_cache_shares_plans_across_threads() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        let cache = PlanCache::sharded(8);
        let dirty: Vec<Symbol> = ["Ian", "China", "Shanghai", "Hongkong", "ICDE"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (rules, program, cache, dirty) = (&rules, &program, &cache, &dirty);
                scope.spawn(move || {
                    let mut scratch = CompiledScratch::new(rules.len());
                    for _ in 0..50 {
                        let mut row = dirty.clone();
                        repair_row_compiled(
                            rules,
                            program,
                            CompiledEngine::Linear,
                            Some(cache),
                            &mut scratch,
                            &mut row,
                            &NoopObserver,
                        );
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert_eq!(stats.entries, 1, "one distinct signature");
        assert!(stats.hits >= 196, "at most one miss per thread");
    }

    #[test]
    fn empty_ruleset_compiles_to_clean_plans() {
        let mut sy = SymbolTable::new();
        let rules = RuleSet::new(schema());
        let program = RuleProgram::compile(&rules);
        assert_eq!(program.num_groups(), 0);
        let cache = PlanCache::unbounded();
        let mut scratch = CompiledScratch::new(0);
        let mut row: Vec<Symbol> = ["a", "b", "c", "d", "e"]
            .iter()
            .map(|v| sy.intern(v))
            .collect();
        for _ in 0..3 {
            let ups = repair_row_compiled(
                &rules,
                &program,
                CompiledEngine::Chase,
                Some(&cache),
                &mut scratch,
                &mut row,
                &NoopObserver,
            );
            assert!(ups.is_empty());
        }
        // All rows share the empty signature: one miss, then hits.
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 2));
    }
}
