//! Batched columnar repair: gather, group by signature, repair each
//! group once.
//!
//! The row-oriented compiled drivers pay one signature allocation and
//! one cache probe (or one engine run) per tuple even when a batch is
//! dominated by duplicate evidence projections. This module exploits the
//! same redundancy *within* a batch: [`RuleProgram::signature_hashes`]
//! fingerprints every row with one tight column scan per relevant
//! attribute, rows are grouped by fingerprint with exact verification
//! against each group representative's cells, and each distinct
//! signature runs the compiled engine exactly once — the resulting
//! [`RepairPlan`] is scattered back to every member row. A batch with
//! `k` distinct signatures therefore does `k` engine runs (and `k`
//! cache probes and signature allocations) instead of `n`, on top of
//! the existing cross-batch [`PlanCache`] replay.
//!
//! **Output equivalence.** Rows are visited in ascending order and each
//! row emits the hooks the row driver would: a group's first row behaves
//! like a plan-cache miss (or hit, when a previous batch already memoized
//! the signature), and member rows replay the plan with the same per-fix
//! `rule_applied`/`plan_replayed` calls a [`PlanCache`] hit produces —
//! minus the cache probe, and with the members' `tuple_done`s coalesced
//! into one [`RepairObserver::tuples_done`] per group (identical call
//! multiset, so every final counter and histogram matches; per-call
//! observer cost for a clean duplicate row drops to zero). Crucially
//! `cell_repaired` fixes are still emitted per row in the identical
//! `(row, ordinal)` order, so ledgers, repaired tables and output CSV
//! are byte-identical to the row path (pinned by proptests); only the
//! `repair.plan_cache.*` lookup counts (k probes instead of n) and the
//! columnar-only `repair.batch.*` counters differ.

use std::sync::Arc;

use fxhash::FxHashMap;
use obs::{NoopObserver, RepairObserver};
use relation::{AttrSet, ColumnTable, Symbol};

use crate::repair::compile::{
    run_engine, CompiledEngine, CompiledScratch, PlanCache, RepairPlan, RuleProgram, TupleSignature,
};
use crate::repair::{CellUpdate, RepairOutcome};
use crate::ruleset::RuleSet;

/// Group-by shape of one batched repair: how many rows were grouped into
/// how many distinct signatures, and how many rows were repaired by
/// scattering a group plan instead of touching the engine or cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Rows in the batch.
    pub rows: usize,
    /// Distinct signatures (= engine runs or cache probes).
    pub groups: usize,
    /// Member rows repaired by plan scatter (`rows - groups`).
    pub scattered: usize,
}

impl BatchStats {
    /// Accumulate another batch's stats (per-chunk totals in the
    /// parallel driver, per-batch totals in the streaming driver).
    pub fn merge(&mut self, other: BatchStats) {
        self.rows += other.rows;
        self.groups += other.groups;
        self.scattered += other.scattered;
    }
}

/// Scatter a group's plan onto row `i` of the columns, emitting the
/// per-fix hooks a [`PlanCache`] replay does. The caller accounts for
/// `tuple_done` — per rep for group representatives, coalesced into one
/// [`RepairObserver::tuples_done`] per group for scattered members.
fn scatter_plan<O: RepairObserver>(
    plan: &RepairPlan,
    cols: &mut [&mut [Symbol]],
    i: usize,
    observer: &O,
) {
    for u in plan.updates() {
        debug_assert_eq!(
            cols[u.attr.index()][i],
            u.old,
            "plan scattered onto a row with a different signature"
        );
        cols[u.attr.index()][i] = u.new;
        observer.rule_applied(u.rule.index(), u.attr.index());
        observer.plan_replayed(u.rule.index(), u.attr.index());
    }
}

/// Run the engine on row `i` (gathered into `row_buf`), write the fixes
/// back into the columns, and record the run as a [`RepairPlan`].
#[allow(clippy::too_many_arguments)]
fn run_group_rep<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    scratch: &mut CompiledScratch,
    cols: &mut [&mut [Symbol]],
    i: usize,
    row_buf: &mut Vec<Symbol>,
    observer: &O,
) -> RepairPlan {
    row_buf.clear();
    row_buf.extend(cols.iter().map(|c| c[i]));
    let (updates, rounds) = run_engine(rules, program, engine, scratch, row_buf, observer);
    observer.tuple_done(rounds, updates.len());
    for u in &updates {
        cols[u.attr.index()][i] = u.new;
    }
    let assured = updates.iter().fold(AttrSet::EMPTY, |acc, u| {
        acc.union(rules.rule(u.rule).assured_delta())
    });
    RepairPlan::new(updates, rounds, assured)
}

/// The grouped core, shared by the sequential, parallel and streaming
/// columnar drivers (and by servers that hold raw column buffers):
/// repair `cols` (one mutable slice per attribute, all the same length)
/// in place, returning updates re-indexed from `base_row` plus the
/// batch's group-by shape. Emits one `batch_grouped` hook per non-empty
/// batch. The columns must follow the attribute order of `rules`'
/// schema.
#[allow(clippy::too_many_arguments)]
pub fn repair_columns_grouped<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    scratch: &mut CompiledScratch,
    cols: &mut [&mut [Symbol]],
    base_row: usize,
    observer: &O,
) -> (Vec<CellUpdate>, BatchStats) {
    let rows = cols.first().map_or(0, |c| c.len());
    if rows == 0 {
        return (Vec::new(), BatchStats::default());
    }
    // Phase 1 — fingerprint every row's relevant-attribute projection
    // with one sequential pass per relevant column (no per-row signature
    // is materialized), then group provisionally by fingerprint: one
    // cheap u64 map probe per row. Each group's representative is its
    // first row. With an empty rule set every fingerprint equals the
    // seed and the whole batch is one clean group — mirroring the row
    // path's single shared empty signature.
    let rel = program.relevant_attrs();
    let mut hashes = Vec::new();
    program.signature_hashes(&*cols, rows, &mut hashes);
    let mut index: FxHashMap<u64, u32> = FxHashMap::default();
    let mut group_of: Vec<u32> = Vec::with_capacity(rows);
    let mut reps: Vec<u32> = Vec::new();
    for (i, &h) in hashes.iter().enumerate() {
        let next = reps.len() as u32;
        let g = *index.entry(h).or_insert(next);
        if g == next {
            reps.push(i as u32);
        }
        group_of.push(g);
    }
    drop(index);
    drop(hashes);
    // Phase 2 — exact verification, one sequential pass per relevant
    // column against the (cache-resident) per-group representative
    // values: a row whose cell differs from its rep's is a fingerprint
    // collision and is demoted to its own singleton group, so a 64-bit
    // collision costs one extra engine run, never a wrong plan. No
    // repair has happened yet, so the live columns ARE the pre-repair
    // values.
    let mut collided: Vec<u32> = Vec::new();
    let mut rep_vals: Vec<Symbol> = Vec::with_capacity(reps.len());
    for attr in rel {
        let col = &cols[attr.index()];
        rep_vals.clear();
        rep_vals.extend(reps.iter().map(|&r| col[r as usize]));
        for (i, (&v, &g)) in col[..rows].iter().zip(group_of.iter()).enumerate() {
            if v != rep_vals[g as usize] {
                collided.push(i as u32);
            }
        }
    }
    if !collided.is_empty() {
        collided.sort_unstable();
        collided.dedup();
        for &i in &collided {
            let g = reps.len() as u32;
            reps.push(i);
            group_of[i as usize] = g;
        }
    }
    // Phase 3 — repair ascending so the fix stream interleaves exactly
    // like the row driver's: a group's representative resolves its plan
    // (cache probe or engine run — its row is still pre-repair at that
    // point, because it is the group's first row), members scatter it.
    // Scattered members' `tuple_done`s are coalesced: one `tuples_done`
    // per group after the scan (all members share the plan's rounds and
    // update count), so a clean duplicate row costs zero observer
    // atomics instead of five. Only aggregating observers implement
    // `tuple_done`, so the call multiset — and every final counter — is
    // unchanged; `cell_repaired` stays strictly per-row and in order.
    let groups = reps.len();
    let mut plans: Vec<Option<Arc<RepairPlan>>> = vec![None; groups];
    let mut members: Vec<u32> = vec![0; groups];
    let mut all_updates: Vec<CellUpdate> = Vec::new();
    let mut row_buf: Vec<Symbol> = Vec::with_capacity(cols.len());
    let mut sig_buf: Vec<Symbol> = Vec::with_capacity(rel.len());
    let mut scattered = 0usize;
    for i in 0..rows {
        let g = group_of[i] as usize;
        if let Some(plan) = &plans[g] {
            scattered += 1;
            members[g] += 1;
            if !plan.updates().is_empty() {
                scatter_plan(plan, cols, i, observer);
                for (k, u) in plan.updates().iter().enumerate() {
                    let mut upd = *u;
                    upd.row = base_row + i;
                    observer.cell_repaired(upd.as_fix(k));
                    all_updates.push(upd);
                }
            }
            continue;
        }
        let plan = match cache {
            Some(cache) => {
                sig_buf.clear();
                sig_buf.extend(rel.iter().map(|a| cols[a.index()][i]));
                let sig = TupleSignature::from_slice(&sig_buf);
                match cache.get(&sig) {
                    Some(plan) => {
                        observer.plan_cache_lookup(true);
                        scatter_plan(&plan, cols, i, observer);
                        observer.tuple_done(plan.rounds(), plan.updates().len());
                        plan
                    }
                    None => {
                        observer.plan_cache_lookup(false);
                        let plan = run_group_rep(
                            rules,
                            program,
                            engine,
                            scratch,
                            cols,
                            i,
                            &mut row_buf,
                            observer,
                        );
                        for _ in 0..cache.insert(sig, plan.clone()) {
                            observer.plan_cache_evicted();
                        }
                        Arc::new(plan)
                    }
                }
            }
            None => Arc::new(run_group_rep(
                rules,
                program,
                engine,
                scratch,
                cols,
                i,
                &mut row_buf,
                observer,
            )),
        };
        for (k, u) in plan.updates().iter().enumerate() {
            let mut upd = *u;
            upd.row = base_row + i;
            observer.cell_repaired(upd.as_fix(k));
            all_updates.push(upd);
        }
        plans[g] = Some(plan);
    }
    for (g, &count) in members.iter().enumerate() {
        if count > 0 {
            let plan = plans[g].as_ref().expect("group with members has a plan");
            observer.tuples_done(plan.rounds(), plan.updates().len(), count as usize);
        }
    }
    let stats = BatchStats {
        rows,
        groups,
        scattered,
    };
    observer.batch_grouped(rows, groups, scattered);
    (all_updates, stats)
}

/// Batched columnar repair of a whole [`ColumnTable`]: group-by-plan on
/// top of the compiled engine. Produces exactly the table state and
/// update log of [`crate::repair::compiled_table`] with the same
/// `engine` (and therefore of the uncached driver it emulates), plus the
/// batch's group-by shape.
pub fn columnar_table(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    table: &mut ColumnTable,
) -> (RepairOutcome, BatchStats) {
    columnar_table_observed(rules, program, engine, cache, table, &NoopObserver)
}

/// [`columnar_table`] with observer hooks: the row driver's hooks minus
/// the per-member cache probes, plus one `batch_grouped` per non-empty
/// batch.
pub fn columnar_table_observed<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    table: &mut ColumnTable,
    observer: &O,
) -> (RepairOutcome, BatchStats) {
    assert!(
        rules.schema().same_as(table.schema()),
        "rule set and table must share a schema"
    );
    let mut scratch = CompiledScratch::new(rules.len());
    let mut cols = table.columns_mut();
    let (updates, stats) = repair_columns_grouped(
        rules,
        program,
        engine,
        cache,
        &mut scratch,
        &mut cols,
        0,
        observer,
    );
    (RepairOutcome { updates }, stats)
}

/// Columnar `cRepair`: identical output to [`crate::repair::crepair_table`].
pub fn crepair_columnar(
    rules: &RuleSet,
    program: &RuleProgram,
    cache: Option<&PlanCache>,
    table: &mut ColumnTable,
) -> (RepairOutcome, BatchStats) {
    columnar_table(rules, program, CompiledEngine::Chase, cache, table)
}

/// [`crepair_columnar`] with observer hooks.
pub fn crepair_columnar_observed<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    cache: Option<&PlanCache>,
    table: &mut ColumnTable,
    observer: &O,
) -> (RepairOutcome, BatchStats) {
    columnar_table_observed(
        rules,
        program,
        CompiledEngine::Chase,
        cache,
        table,
        observer,
    )
}

/// Columnar `lRepair`: identical output to [`crate::repair::lrepair_table`].
pub fn lrepair_columnar(
    rules: &RuleSet,
    program: &RuleProgram,
    cache: Option<&PlanCache>,
    table: &mut ColumnTable,
) -> (RepairOutcome, BatchStats) {
    columnar_table(rules, program, CompiledEngine::Linear, cache, table)
}

/// [`lrepair_columnar`] with observer hooks.
pub fn lrepair_columnar_observed<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    cache: Option<&PlanCache>,
    table: &mut ColumnTable,
    observer: &O,
) -> (RepairOutcome, BatchStats) {
    columnar_table_observed(
        rules,
        program,
        CompiledEngine::Linear,
        cache,
        table,
        observer,
    )
}

/// Parallel columnar repair: columns are split into horizontal chunks
/// (no transposition — each worker takes one disjoint slice per
/// attribute), each worker runs its own local gather + group-by, and
/// plans cross chunk boundaries only through the shared [`PlanCache`] —
/// the same sharing contract as [`crate::repair::par_compiled_table`].
/// The update log is byte-identical to the sequential columnar (and row)
/// driver's after the final stable sort.
pub fn par_columnar_table(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    table: &mut ColumnTable,
    num_threads: usize,
) -> (RepairOutcome, BatchStats) {
    par_columnar_table_observed(
        rules,
        program,
        engine,
        cache,
        table,
        num_threads,
        &NoopObserver,
    )
}

/// [`par_columnar_table`] with observer hooks: per-row hooks from the
/// shared observer (which must be `Sync`), one `batch_grouped` per
/// worker chunk, and one `worker_done(worker, rows, updates, busy_ns)`
/// per worker. The returned [`BatchStats`] sum the per-chunk stats, so
/// `groups` may exceed the sequential driver's count when a signature
/// spans chunks.
#[allow(clippy::too_many_arguments)]
pub fn par_columnar_table_observed<O: RepairObserver>(
    rules: &RuleSet,
    program: &RuleProgram,
    engine: CompiledEngine,
    cache: Option<&PlanCache>,
    table: &mut ColumnTable,
    num_threads: usize,
    observer: &O,
) -> (RepairOutcome, BatchStats) {
    assert!(
        rules.schema().same_as(table.schema()),
        "rule set and table must share a schema"
    );
    let num_threads = num_threads.max(1);
    let rows = table.len();
    if rows == 0 {
        return (RepairOutcome::default(), BatchStats::default());
    }
    let chunk_rows = rows.div_ceil(num_threads);
    let mut all_updates: Vec<CellUpdate> = Vec::new();
    let mut total = BatchStats::default();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (chunk_idx, mut chunk) in table.columns_mut_chunks(chunk_rows).into_iter().enumerate() {
            let base_row = chunk_idx * chunk_rows;
            handles.push(scope.spawn(move || {
                let start = std::time::Instant::now();
                let mut scratch = CompiledScratch::new(rules.len());
                let (local, stats) = repair_columns_grouped(
                    rules,
                    program,
                    engine,
                    cache,
                    &mut scratch,
                    &mut chunk,
                    base_row,
                    observer,
                );
                let busy_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                observer.worker_done(chunk_idx, stats.rows, local.len(), busy_ns);
                (local, stats)
            }));
        }
        for h in handles {
            let (local, stats) = h.join().expect("repair worker panicked");
            all_updates.extend(local);
            total.merge(stats);
        }
    });
    // Same stable-sort argument as the parallel row driver: chunks append
    // in ascending base_row and per-row application order survives, so
    // the log is byte-identical to the sequential driver's.
    all_updates.sort_by_key(|u| u.row);
    (
        RepairOutcome {
            updates: all_updates,
        },
        total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::compile::compiled_table;
    use relation::{Schema, SymbolTable, Table};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    fn fig8_rules(sy: &mut SymbolTable) -> RuleSet {
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Beijing"), ("conf", "ICDE")],
            "city",
            &["Hongkong"],
            "Shanghai",
        )
        .unwrap();
        rs
    }

    fn dup_table(rules: &RuleSet, sy: &mut SymbolTable, copies: usize) -> Table {
        let rows = [
            ["George", "China", "Beijing", "Beijing", "SIGMOD"],
            ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
            ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
        ];
        let mut t = Table::with_capacity(rules.schema().clone(), rows.len() * copies);
        for c in 0..copies {
            for (j, r) in rows.iter().enumerate() {
                // Vary the irrelevant `name` so distinct rows share
                // signatures without being bytewise equal.
                let name = format!("p{c}-{j}");
                t.push_strs(sy, &[&name, r[1], r[2], r[3], r[4]]).unwrap();
            }
        }
        t
    }

    #[test]
    fn grouped_repair_matches_row_driver() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        let table = dup_table(&rules, &mut sy, 20);
        for engine in [CompiledEngine::Chase, CompiledEngine::Linear] {
            for cached in [false, true] {
                let cache = cached.then(PlanCache::unbounded);
                let mut row_t = table.clone();
                let row_out = compiled_table(&rules, &program, engine, cache.as_ref(), &mut row_t);
                let cache2 = cached.then(PlanCache::unbounded);
                let mut col_t = ColumnTable::from_table(&table);
                let (col_out, stats) =
                    columnar_table(&rules, &program, engine, cache2.as_ref(), &mut col_t);
                assert_eq!(row_t.diff_cells(&col_t.to_table()).unwrap(), 0);
                assert_eq!(row_out.updates, col_out.updates);
                assert_eq!(stats.rows, 60);
                assert_eq!(stats.groups, 3, "three distinct signatures");
                assert_eq!(stats.scattered, 57);
            }
        }
    }

    #[test]
    fn groups_run_engine_once_each() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        let table = dup_table(&rules, &mut sy, 50);
        let cache = PlanCache::unbounded();
        let mut col_t = ColumnTable::from_table(&table);
        let (_, stats) = lrepair_columnar(&rules, &program, Some(&cache), &mut col_t);
        // One cache probe per group, not per row.
        let cs = cache.stats();
        assert_eq!(cs.hits + cs.misses, stats.groups as u64);
        assert_eq!(cs.misses, 3);
        // A second batch over a warm cache probes k times and hits k times.
        let mut again = ColumnTable::from_table(&table);
        let (_, stats2) = lrepair_columnar(&rules, &program, Some(&cache), &mut again);
        assert_eq!(stats2.groups, 3);
        assert_eq!(cache.stats().hits, 3);
    }

    #[test]
    fn parallel_columnar_matches_sequential() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        let table = dup_table(&rules, &mut sy, 40);
        let mut seq_t = ColumnTable::from_table(&table);
        let (seq_out, _) = lrepair_columnar(&rules, &program, None, &mut seq_t);
        for threads in [1usize, 4, 7] {
            let cache = PlanCache::sharded(4);
            let mut par_t = ColumnTable::from_table(&table);
            let (par_out, stats) = par_columnar_table(
                &rules,
                &program,
                CompiledEngine::Linear,
                Some(&cache),
                &mut par_t,
                threads,
            );
            assert_eq!(seq_t.to_table().diff_cells(&par_t.to_table()).unwrap(), 0);
            assert_eq!(seq_out.updates, par_out.updates, "threads={threads}");
            assert_eq!(stats.rows, 120);
        }
    }

    #[test]
    fn empty_ruleset_gives_one_clean_group() {
        let mut sy = SymbolTable::new();
        let rules = RuleSet::new(schema());
        let program = RuleProgram::compile(&rules);
        assert!(program.relevant_attrs().is_empty(), "width-0 signatures");
        let mut t = Table::new(rules.schema().clone());
        for i in 0..5 {
            let v = format!("v{i}");
            t.push_strs(&mut sy, &[&v, "b", "c", "d", "e"]).unwrap();
        }
        let cache = PlanCache::unbounded();
        let mut cols = ColumnTable::from_table(&t);
        let (out, stats) = lrepair_columnar(&rules, &program, Some(&cache), &mut cols);
        assert!(out.updates.is_empty());
        assert_eq!(stats.groups, 1, "all rows share the empty signature");
        assert_eq!(stats.scattered, 4);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut sy = SymbolTable::new();
        let rules = fig8_rules(&mut sy);
        let program = RuleProgram::compile(&rules);
        let mut empty = ColumnTable::new(rules.schema().clone());
        let (out, stats) = lrepair_columnar(&rules, &program, None, &mut empty);
        assert!(out.updates.is_empty());
        assert_eq!(stats, BatchStats::default());
        let (pout, pstats) =
            par_columnar_table(&rules, &program, CompiledEngine::Chase, None, &mut empty, 4);
        assert!(pout.updates.is_empty());
        assert_eq!(pstats, BatchStats::default());
    }
}
