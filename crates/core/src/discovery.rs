//! Automatic fixing-rule discovery — the paper's future-work item §8(1):
//! *"We are planning to design algorithm to automatically discover fixing
//! rules."*
//!
//! Unlike [`crate::generation`], which consults a master oracle (reference
//! data), discovery works from the dirty table **alone**, using the
//! redundancy that FDs induce: in a group of tuples agreeing on `X`, a
//! heavily-supported `B` value is evidence of the truth and rarely-occurring
//! dissenters are evidence of errors. A rule
//! `((X, key), (B, {minority values})) → majority` is emitted when
//!
//! * the majority value's support is at least `min_support` rows **and** at
//!   least `min_confidence` of the group (so the fact is trustworthy), and
//! * each harvested negative has support at most `max_negative_support`
//!   rows (so we never classify a genuinely contested value as an error —
//!   the (China, Tokyo) conservatism, support-based).
//!
//! Discovered rules carry an empirical confidence and are deduplicated and
//! conflict-resolved by the caller like any other rule source. On data
//! without redundancy (uis-like), discovery finds little — exactly the
//! regime where the paper's experts, and our oracle pipeline, are needed.

use std::collections::HashMap;

use fd::partition::Partition;
use fd::Fd;
use relation::{AttrId, Symbol, Table};

use crate::rule::FixingRule;

/// Discovery thresholds.
#[derive(Debug, Clone, Copy)]
pub struct DiscoveryConfig {
    /// Minimum rows carrying the majority value for it to become a fact.
    pub min_support: usize,
    /// Minimum fraction of the group the majority value must cover.
    pub min_confidence: f64,
    /// Maximum rows a value may have while still being harvested as a
    /// negative pattern.
    pub max_negative_support: usize,
}

impl Default for DiscoveryConfig {
    fn default() -> Self {
        DiscoveryConfig {
            min_support: 3,
            min_confidence: 0.7,
            max_negative_support: 1,
        }
    }
}

/// One discovered rule with its supporting statistics.
#[derive(Debug, Clone)]
pub struct DiscoveredRule {
    /// The rule itself.
    pub rule: FixingRule,
    /// Rows supporting the fact.
    pub fact_support: usize,
    /// Rows carrying some negative pattern (the rule's immediate yield).
    pub error_support: usize,
    /// `fact_support / group size`.
    pub confidence: f64,
}

/// Discover fixing rules for one (possibly multi-RHS) FD from the (dirty)
/// table.
///
/// ```
/// use relation::{Schema, SymbolTable, Table};
/// use fixrules::discovery::{discover_rules, DiscoveryConfig};
///
/// let schema = Schema::new("T", ["country", "capital"]).unwrap();
/// let mut sy = SymbolTable::new();
/// let mut t = Table::new(schema.clone());
/// for _ in 0..4 {
///     t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
/// }
/// t.push_strs(&mut sy, &["China", "Bejing"]).unwrap(); // a typo to learn from
/// let fd = fd::Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
/// let found = discover_rules(&t, &fd, DiscoveryConfig::default());
/// assert_eq!(found.len(), 1);
/// assert_eq!(sy.resolve(found[0].rule.fact()), "Beijing");
/// ```
///
/// The FD is analysed as a whole so key-suspect rows can be recognised: a
/// row deviating from its group's majorities on **two or more** RHS
/// attributes almost certainly carries a wrong key (its whole record
/// belongs to some other group), so it is excluded from negative-pattern
/// harvesting — the same conservatism
/// [`crate::generation::seed_rules_all_fds`] applies with the oracle.
pub fn discover_rules(table: &Table, fd: &Fd, config: DiscoveryConfig) -> Vec<DiscoveredRule> {
    let singles: Vec<Fd> = fd.split_rhs().collect();
    let partition = Partition::build(table, fd.lhs());
    let mut out = Vec::new();
    for (key, rows) in partition.non_singleton_groups() {
        // Majority per RHS attribute.
        let per_attr_counts: Vec<HashMap<Symbol, usize>> = singles
            .iter()
            .map(|single| {
                let rhs = single.rhs()[0];
                let mut counts: HashMap<Symbol, usize> = HashMap::new();
                for &r in rows {
                    *counts.entry(table.cell(r, rhs)).or_insert(0) += 1;
                }
                counts
            })
            .collect();
        let majorities: Vec<(Symbol, usize)> = per_attr_counts
            .iter()
            .map(|counts| {
                counts
                    .iter()
                    .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
                    .map(|(&v, &c)| (v, c))
                    .expect("non-empty group")
            })
            .collect();
        // Key-suspect rows: deviate from the majorities on ≥ 2 RHS attrs.
        let mut neg_per_attr: Vec<Vec<Symbol>> = vec![Vec::new(); singles.len()];
        let mut yield_per_attr: Vec<usize> = vec![0; singles.len()];
        for &r in rows {
            let row = table.row(r);
            let deviating: Vec<usize> = singles
                .iter()
                .enumerate()
                .filter(|(k, single)| row[single.rhs()[0].index()] != majorities[*k].0)
                .map(|(k, _)| k)
                .collect();
            if deviating.len() != 1 {
                continue;
            }
            let k = deviating[0];
            let v = row[singles[k].rhs()[0].index()];
            if per_attr_counts[k][&v] > config.max_negative_support {
                continue; // contested value, not evidently wrong
            }
            yield_per_attr[k] += 1;
            if !neg_per_attr[k].contains(&v) {
                neg_per_attr[k].push(v);
            }
        }
        for (k, mut neg) in neg_per_attr.into_iter().enumerate() {
            if neg.is_empty() {
                continue;
            }
            let (fact, fact_support) = majorities[k];
            let confidence = fact_support as f64 / rows.len() as f64;
            if fact_support < config.min_support || confidence < config.min_confidence {
                continue;
            }
            neg.sort();
            let error_support = yield_per_attr[k];
            let evidence: Vec<(AttrId, Symbol)> =
                fd.lhs().iter().copied().zip(key.iter().copied()).collect();
            if let Ok(rule) = FixingRule::new(evidence, singles[k].rhs()[0], neg, fact) {
                out.push(DiscoveredRule {
                    rule,
                    fact_support,
                    error_support,
                    confidence,
                });
            }
        }
    }
    // Highest-impact first, deterministic.
    out.sort_by(|a, b| {
        b.error_support
            .cmp(&a.error_support)
            .then(b.fact_support.cmp(&a.fact_support))
            .then_with(|| a.rule.tp().cmp(b.rule.tp()))
    });
    out
}

/// Discover across a list of (multi-RHS) FDs, flattened and globally
/// impact-ranked.
pub fn discover_all(table: &Table, fds: &[Fd], config: DiscoveryConfig) -> Vec<DiscoveredRule> {
    let mut out: Vec<DiscoveredRule> = fds
        .iter()
        .flat_map(|fd| discover_rules(table, fd, config))
        .collect();
    out.sort_by(|a, b| {
        b.error_support
            .cmp(&a.error_support)
            .then(b.fact_support.cmp(&a.fact_support))
            .then_with(|| a.rule.tp().cmp(b.rule.tp()))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn table_with(rows: &[[&str; 2]]) -> (Table, SymbolTable, Schema) {
        let schema = Schema::new("T", ["country", "capital"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        for row in rows {
            t.push_strs(&mut sy, row).unwrap();
        }
        (t, sy, schema)
    }

    #[test]
    fn discovers_majority_fact_and_minority_negatives() {
        let (t, sy, schema) = table_with(&[
            ["China", "Beijing"],
            ["China", "Beijing"],
            ["China", "Beijing"],
            ["China", "Beijing"],
            ["China", "Shanghai"], // lone dissenter: an error
        ]);
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        let found = discover_rules(&t, &fd, DiscoveryConfig::default());
        assert_eq!(found.len(), 1);
        let d = &found[0];
        assert_eq!(d.rule.fact(), sy.get("Beijing").unwrap());
        assert_eq!(d.rule.neg(), &[sy.get("Shanghai").unwrap()]);
        assert_eq!(d.fact_support, 4);
        assert_eq!(d.error_support, 1);
        assert!((d.confidence - 0.8).abs() < 1e-9); // 4 of 5
    }

    #[test]
    fn contested_values_are_not_negatives() {
        // Two values with support 2 each: no trustworthy fact at the
        // default thresholds — the (China, Tokyo) ambiguity, support form.
        let (t, _, schema) = table_with(&[
            ["China", "Beijing"],
            ["China", "Beijing"],
            ["China", "Shanghai"],
            ["China", "Shanghai"],
        ]);
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        assert!(discover_rules(&t, &fd, DiscoveryConfig::default()).is_empty());
    }

    #[test]
    fn low_support_groups_are_skipped() {
        let (t, _, schema) = table_with(&[["China", "Beijing"], ["China", "Shanghai"]]);
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        assert!(discover_rules(&t, &fd, DiscoveryConfig::default()).is_empty());
        // But a permissive config finds it.
        let lax = DiscoveryConfig {
            min_support: 1,
            min_confidence: 0.5,
            max_negative_support: 1,
        };
        assert_eq!(discover_rules(&t, &fd, lax).len(), 1);
    }

    #[test]
    fn discovered_rules_repair_the_errors_they_saw() {
        let (mut t, sy, schema) = table_with(&[
            ["China", "Beijing"],
            ["China", "Beijing"],
            ["China", "Beijing"],
            ["China", "Bejing"], // typo
            ["Canada", "Ottawa"],
            ["Canada", "Ottawa"],
            ["Canada", "Ottawa"],
            ["Canada", "Toronto"], // active-domain error
        ]);
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        let found = discover_rules(&t, &fd, DiscoveryConfig::default());
        assert_eq!(found.len(), 2);
        let mut rules = crate::RuleSet::new(schema.clone());
        for d in found {
            rules.push(d.rule);
        }
        assert!(rules.check_consistency().is_consistent());
        let outcome = crate::repair::crepair_table(&rules, &mut t);
        assert_eq!(outcome.total_updates(), 2);
        let cap = schema.attr("capital").unwrap();
        assert_eq!(sy.resolve(t.cell(3, cap)), "Beijing");
        assert_eq!(sy.resolve(t.cell(7, cap)), "Ottawa");
    }

    #[test]
    fn impact_ranking_puts_bigger_yields_first() {
        let schema = Schema::new("T", ["k", "v"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        // Group g1: 5 good + 1 bad; group g2: 5 good + 2 distinct bads.
        for _ in 0..5 {
            t.push_strs(&mut sy, &["g1", "A"]).unwrap();
        }
        t.push_strs(&mut sy, &["g1", "a1"]).unwrap();
        for _ in 0..5 {
            t.push_strs(&mut sy, &["g2", "B"]).unwrap();
        }
        t.push_strs(&mut sy, &["g2", "b1"]).unwrap();
        t.push_strs(&mut sy, &["g2", "b2"]).unwrap();
        let fd = Fd::from_names(&schema, ["k"], ["v"]).unwrap();
        let found = discover_all(&t, &[fd], DiscoveryConfig::default());
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].error_support, 2);
        assert_eq!(found[1].error_support, 1);
    }

    #[test]
    fn no_redundancy_no_discovery() {
        // uis-like data: singleton groups teach nothing.
        let (t, _, schema) = table_with(&[
            ["China", "Beijing"],
            ["Japan", "Tokyo"],
            ["Canada", "Ottawa"],
        ]);
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        assert!(discover_rules(&t, &fd, DiscoveryConfig::default()).is_empty());
    }
}
