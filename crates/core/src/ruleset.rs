//! Rule sets `Σ` and their bookkeeping.

use relation::{Schema, SymbolTable};

use crate::consistency::{self, ConsistencyReport};
use crate::rule::{FixRuleError, FixingRule};

/// Dense identifier of a rule within one [`RuleSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Index into the rule set's storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A set `Σ` of fixing rules over one schema.
#[derive(Debug, Clone)]
pub struct RuleSet {
    schema: Schema,
    rules: Vec<FixingRule>,
}

impl RuleSet {
    /// Create an empty rule set over `schema`.
    pub fn new(schema: Schema) -> Self {
        RuleSet {
            schema,
            rules: Vec::new(),
        }
    }

    /// The schema the rules are defined on.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Add a pre-built rule, returning its id.
    pub fn push(&mut self, rule: FixingRule) -> RuleId {
        let id = RuleId(self.rules.len() as u32);
        self.rules.push(rule);
        id
    }

    /// Build a rule from attribute names / string values and add it.
    pub fn push_named(
        &mut self,
        symbols: &mut SymbolTable,
        evidence: &[(&str, &str)],
        b: &str,
        neg: &[&str],
        fact: &str,
    ) -> Result<RuleId, FixRuleError> {
        let rule = FixingRule::from_named(&self.schema, symbols, evidence, b, neg, fact)?;
        Ok(self.push(rule))
    }

    /// Number of rules `|Σ|`.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// `size(Σ)`: total number of pattern cells across all rules — the unit
    /// in the paper's `O(size(Σ))` bounds.
    pub fn size(&self) -> usize {
        self.rules.iter().map(FixingRule::size).sum()
    }

    /// Borrow a rule.
    #[inline]
    pub fn rule(&self, id: RuleId) -> &FixingRule {
        &self.rules[id.index()]
    }

    /// Borrow a rule mutably (used by conflict resolution).
    pub fn rule_mut(&mut self, id: RuleId) -> &mut FixingRule {
        &mut self.rules[id.index()]
    }

    /// All rules in insertion order.
    pub fn rules(&self) -> &[FixingRule] {
        &self.rules
    }

    /// Iterate `(id, rule)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &FixingRule)> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| (RuleId(i as u32), r))
    }

    /// Remove a set of rules by id, compacting the set. Ids of remaining
    /// rules are renumbered; used by the conservative conflict-resolution
    /// strategy.
    pub fn remove_rules(&mut self, ids: &[RuleId]) {
        if ids.is_empty() {
            return;
        }
        let mut drop = vec![false; self.rules.len()];
        for id in ids {
            if id.index() < drop.len() {
                drop[id.index()] = true;
            }
        }
        let mut i = 0;
        self.rules.retain(|_| {
            let keep = !drop[i];
            i += 1;
            keep
        });
    }

    /// Keep only the first `n` rules (used by the |Σ|-sweep experiments).
    pub fn truncate(&mut self, n: usize) {
        self.rules.truncate(n);
    }

    /// Check consistency with the rule-characterization algorithm
    /// (`isConsist_r`); see [`consistency`] for the enumeration variant and
    /// early-termination controls.
    pub fn check_consistency(&self) -> ConsistencyReport {
        consistency::is_consistent_characterize(self, usize::MAX)
    }

    /// Check consistency across `num_threads` workers, stopping at the
    /// first (lowest-indexed) conflicting pair; see
    /// [`consistency::is_consistent_parallel`].
    pub fn check_consistency_parallel(&self, num_threads: usize) -> ConsistencyReport {
        consistency::is_consistent_parallel(self, num_threads)
    }

    /// Push `rule` only if it keeps the set consistent (assuming the set
    /// already is — Proposition 3 makes the incremental pairwise check
    /// sufficient). On conflict the rule is rejected and the conflicts
    /// returned.
    pub fn try_push_consistent(
        &mut self,
        rule: FixingRule,
    ) -> Result<RuleId, Vec<crate::consistency::Conflict>> {
        let conflicts = consistency::check_candidate(self, &rule);
        if conflicts.is_empty() {
            Ok(self.push(rule))
        } else {
            Err(conflicts)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    #[test]
    fn push_and_access() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        let id = rs
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai"],
                "Beijing",
            )
            .unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rule(id).neg().len(), 1);
        assert_eq!(rs.size(), 3);
    }

    #[test]
    fn size_sums_pattern_cells() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        // (1 + 2 + 1) + (1 + 1 + 1)
        assert_eq!(rs.size(), 7);
    }

    #[test]
    fn remove_rules_compacts() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        let a = rs
            .push_named(&mut sy, &[("country", "A")], "capital", &["x"], "y")
            .unwrap();
        let _b = rs
            .push_named(&mut sy, &[("country", "B")], "capital", &["x"], "y")
            .unwrap();
        let _c = rs
            .push_named(&mut sy, &[("country", "C")], "capital", &["x"], "y")
            .unwrap();
        rs.remove_rules(&[a]);
        assert_eq!(rs.len(), 2);
        // Remaining rules renumbered from zero.
        assert_eq!(
            rs.rule(RuleId(0))
                .evidence_value(rs.schema().attr("country").unwrap()),
            sy.get("B")
        );
    }

    #[test]
    fn iter_yields_dense_ids() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        rs.push_named(&mut sy, &[("country", "A")], "capital", &["x"], "y")
            .unwrap();
        rs.push_named(&mut sy, &[("country", "B")], "capital", &["x"], "y")
            .unwrap();
        let ids: Vec<u32> = rs.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn try_push_accepts_compatible_and_rejects_conflicting() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        // Compatible: different evidence constant on the same X.
        let ok = crate::rule::FixingRule::from_named(
            rs.schema(),
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        assert!(rs.try_push_consistent(ok).is_ok());
        assert_eq!(rs.len(), 2);
        // Conflicting: φ3 against the over-broad φ'1 shape — same-B
        // overlapping negatives with a different fact.
        let bad = crate::rule::FixingRule::from_named(
            rs.schema(),
            &mut sy,
            &[("conf", "ICDE")],
            "capital",
            &["Shanghai"],
            "Nanjing",
        )
        .unwrap();
        let err = rs.try_push_consistent(bad).unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].first, RuleId(0));
        assert_eq!(rs.len(), 2, "rejected rule must not be added");
    }

    #[test]
    fn incremental_check_matches_full_check() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        )
        .unwrap();
        let phi3 = crate::rule::FixingRule::from_named(
            rs.schema(),
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        let incremental = crate::consistency::check_candidate(&rs, &phi3);
        let mut full = rs.clone();
        full.push(phi3);
        let report = full.check_consistency();
        assert_eq!(incremental.len(), report.conflicts.len());
        assert_eq!(incremental[0].case, report.conflicts[0].case);
    }

    #[test]
    fn truncate_limits_rule_count() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        for c in ["A", "B", "C", "D"] {
            rs.push_named(&mut sy, &[("country", c)], "capital", &["x"], "y")
                .unwrap();
        }
        rs.truncate(2);
        assert_eq!(rs.len(), 2);
    }
}
