//! `isConsist_t` — consistency by tuple enumeration (§5.2.1).
//!
//! For a pair of rules, only tuples drawing their values from the pair's
//! evidence constants and negative patterns can match both rules (Lemma 4
//! and the discussion around Example 9), so it suffices to enumerate the
//! product `Π_A V(A)` over the attributes appearing in either rule and check
//! that every enumerated tuple has a unique fix under the pair (computed by
//! the all-orders chase of [`crate::semantics::all_fixes`]).
//!
//! Attributes outside both rules are filled with a sentinel value that
//! matches no constant — the `'_'` of Example 9.

use std::collections::BTreeMap;

use relation::{AttrId, Symbol};

use crate::consistency::{Conflict, ConflictCase, ConsistencyReport};
use crate::rule::FixingRule;
use crate::ruleset::{RuleId, RuleSet};
use crate::semantics::all_fixes;

/// Sentinel standing for "a value outside every active domain" (the paper's
/// `'_'`). [`relation::SymbolTable`] allocates ids densely from zero, so
/// `u32::MAX` never collides with a real symbol in practice.
pub const WILDCARD: Symbol = Symbol(u32::MAX);

/// The candidate value sets `V(A)` for a pair of rules: for each attribute
/// appearing in either rule, every constant mentioned for it in an evidence
/// or negative pattern. Returned sorted for deterministic enumeration.
pub fn candidate_values(a: &FixingRule, b: &FixingRule) -> BTreeMap<AttrId, Vec<Symbol>> {
    let mut v: BTreeMap<AttrId, Vec<Symbol>> = BTreeMap::new();
    for rule in [a, b] {
        for (&attr, &val) in rule.x().iter().zip(rule.tp().iter()) {
            v.entry(attr).or_default().push(val);
        }
        v.entry(rule.b()).or_default().extend_from_slice(rule.neg());
    }
    for vals in v.values_mut() {
        vals.sort();
        vals.dedup();
    }
    v
}

/// Number of tuples `Π |V(A)|` the enumeration will inspect for this pair.
pub fn enumeration_size(a: &FixingRule, b: &FixingRule) -> usize {
    candidate_values(a, b).values().map(|v| v.len()).product()
}

/// Check one pair of rules by tuple enumeration. Returns a witness tuple
/// with two distinct fixes, or `None` when the pair is consistent.
///
/// `arity` is the schema arity (the row width to materialise).
pub fn check_pair_enumerate(a: &FixingRule, b: &FixingRule, arity: usize) -> Option<Vec<Symbol>> {
    // Lemma 4 short-circuit: incompatible evidence patterns mean no tuple
    // matches both rules, so the pair is consistent without enumerating.
    if !super::evidence_compatible(a, b) {
        return None;
    }
    let values = candidate_values(a, b);
    let attrs: Vec<AttrId> = values.keys().copied().collect();
    let domains: Vec<&Vec<Symbol>> = values.values().collect();
    let mut row: Vec<Symbol> = vec![WILDCARD; arity];
    let mut indices = vec![0usize; attrs.len()];
    loop {
        for (k, &attr) in attrs.iter().enumerate() {
            row[attr.index()] = domains[k][indices[k]];
        }
        let fixes = all_fixes(&[a, b], &row);
        if fixes.len() > 1 {
            return Some(row);
        }
        // Odometer increment over the product space.
        let mut k = 0;
        loop {
            if k == indices.len() {
                return None;
            }
            indices[k] += 1;
            if indices[k] < domains[k].len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

/// Classify a conflict found by enumeration using the Fig 4 analysis so the
/// two checkers report comparable diagnostics.
fn classify(a: &FixingRule, b: &FixingRule) -> ConflictCase {
    super::characterize::check_pair(a, b).unwrap_or(ConflictCase::SameBDifferentFacts)
}

/// Check a whole rule set pairwise by tuple enumeration, stopping after
/// `max_conflicts` conflicts.
pub fn is_consistent_enumerate(rules: &RuleSet, max_conflicts: usize) -> ConsistencyReport {
    is_consistent_enumerate_observed(rules, max_conflicts, &obs::NoopObserver)
}

/// [`is_consistent_enumerate`] with observer hooks (`pairs_checked`, one
/// `conflict_found` per conflicting pair).
pub fn is_consistent_enumerate_observed<O: obs::RepairObserver>(
    rules: &RuleSet,
    max_conflicts: usize,
    observer: &O,
) -> ConsistencyReport {
    let arity = rules.schema().arity();
    let mut report = ConsistencyReport::default();
    let n = rules.len();
    'outer: for i in 0..n {
        for j in (i + 1)..n {
            report.pairs_checked += 1;
            let (a, b) = (rules.rule(RuleId(i as u32)), rules.rule(RuleId(j as u32)));
            if let Some(witness) = check_pair_enumerate(a, b, arity) {
                report.conflicts.push(Conflict {
                    first: RuleId(i as u32),
                    second: RuleId(j as u32),
                    case: classify(a, b),
                    witness: Some(witness),
                });
                if report.conflicts.len() >= max_conflicts {
                    break 'outer;
                }
            }
        }
    }
    report.observe(observer);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    fn rule(
        schema: &Schema,
        sy: &mut SymbolTable,
        ev: &[(&str, &str)],
        b: &str,
        neg: &[&str],
        fact: &str,
    ) -> FixingRule {
        FixingRule::from_named(schema, sy, ev, b, neg, fact).unwrap()
    }

    #[test]
    fn example_9_enumerates_six_tuples() {
        // φ1 and φ2 of Example 3: 2 country constants × 3 capital constants.
        let s = schema();
        let mut sy = SymbolTable::new();
        let p1 = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        );
        let p2 = rule(
            &s,
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        );
        assert_eq!(enumeration_size(&p1, &p2), 6);
        assert_eq!(check_pair_enumerate(&p1, &p2, s.arity()), None);
    }

    #[test]
    fn example_8_finds_witness_r3() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let p1p = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        );
        let p3 = rule(
            &s,
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        );
        let witness = check_pair_enumerate(&p1p, &p3, s.arity()).expect("inconsistent");
        // The witness must carry the conflicting core of r3:
        // country=China, capital=Tokyo, city=Tokyo, conf=ICDE.
        assert_eq!(witness[1], sy.get("China").unwrap());
        assert_eq!(witness[2], sy.get("Tokyo").unwrap());
        assert_eq!(witness[3], sy.get("Tokyo").unwrap());
        assert_eq!(witness[4], sy.get("ICDE").unwrap());
        // name is untouched by either rule: wildcard.
        assert_eq!(witness[0], WILDCARD);
    }

    #[test]
    fn candidate_values_union_evidence_and_negatives() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let p1 = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        );
        let p3 = rule(
            &s,
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        );
        let v = candidate_values(&p1, &p3);
        // capital: negatives of φ1 (Shanghai, Hongkong) ∪ evidence of φ3
        // (Tokyo).
        let capital = s.attr("capital").unwrap();
        assert_eq!(v[&capital].len(), 3);
        // country: evidence of φ1 (China) ∪ negatives of φ3 (China) = 1.
        let country = s.attr("country").unwrap();
        assert_eq!(v[&country].len(), 1);
    }

    #[test]
    fn agrees_with_characterization_on_rule_sets() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut consistent = RuleSet::new(s.clone());
        consistent
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong"],
                "Beijing",
            )
            .unwrap();
        consistent
            .push_named(
                &mut sy,
                &[("country", "Canada")],
                "capital",
                &["Toronto"],
                "Ottawa",
            )
            .unwrap();
        consistent
            .push_named(
                &mut sy,
                &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
                "country",
                &["China"],
                "Japan",
            )
            .unwrap();
        let (r, t) = crate::consistency::check_both_agree(&consistent);
        assert!(r.is_consistent() && t.is_consistent());

        let mut inconsistent = consistent.clone();
        inconsistent
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong", "Tokyo"],
                "Beijing",
            )
            .unwrap();
        let (r, t) = crate::consistency::check_both_agree(&inconsistent);
        assert!(!r.is_consistent() && !t.is_consistent());
        // Both identify a conflict involving the over-broad rule (id 3).
        assert!(r.conflicting_rules().contains(&RuleId(3)));
        assert!(t.conflicting_rules().contains(&RuleId(3)));
    }

    #[test]
    fn enumeration_respects_max_conflicts() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s);
        // Three rules pairwise conflicting on capital.
        for fact in ["Beijing", "Nanjing", "Xian"] {
            rs.push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai"],
                fact,
            )
            .unwrap();
        }
        let early = is_consistent_enumerate(&rs, 1);
        assert_eq!(early.conflicts.len(), 1);
        let full = is_consistent_enumerate(&rs, usize::MAX);
        assert_eq!(full.conflicts.len(), 3);
        assert!(full.conflicts.iter().all(|c| c.witness.is_some()));
    }
}
