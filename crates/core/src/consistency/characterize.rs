//! `isConsist_r` — consistency by rule characterization (Fig 4).
//!
//! For each pair of distinct rules with compatible evidence, apply the case
//! analysis of §5.2.2:
//!
//! * **Case 1** (`Bi = Bj`): conflict iff the negative-pattern sets overlap
//!   and the facts differ — some tuple matches both rules and they pull `B`
//!   to different values.
//! * **Case 2(a)** (`Bi ∈ Xj`, `Bj ∉ Xi`): conflict iff `tp_j[Bi] ∈
//!   Tp_i[Bi]` — applying `φj` first freezes `Bi` as evidence, applying
//!   `φi` first rewrites it.
//! * **Case 2(b)**: symmetric.
//! * **Case 2(c)** (mutual): both 2(a)/2(b) pattern conditions must hold.
//! * **Case 2(d)** (`Bi ∉ Xj`, `Bj ∉ Xi`): never a conflict — the updates
//!   commute.
//!
//! Negative-pattern membership is a binary search over a tiny sorted vec, so
//! deciding one pair is `O(|Tp_i| + |Tp_j| + |Xi ∩ Xj|)` and the whole check
//! is `O(size(Σ)²)` as stated in the paper.

use crate::consistency::{evidence_compatible, Conflict, ConflictCase, ConsistencyReport};
use crate::rule::FixingRule;
use crate::ruleset::{RuleId, RuleSet};

/// Decide one pair of rules. Returns the case that makes them inconsistent,
/// or `None` when they are consistent.
pub fn check_pair(a: &FixingRule, b: &FixingRule) -> Option<ConflictCase> {
    // Line 2 of Fig 4: incompatible evidence ⇒ no tuple matches both
    // (Lemma 4) ⇒ consistent.
    if !evidence_compatible(a, b) {
        return None;
    }
    if a.b() == b.b() {
        // Case 1. Overlapping negatives with different facts.
        let overlap = if a.neg().len() <= b.neg().len() {
            a.neg().iter().any(|&v| b.neg_contains(v))
        } else {
            b.neg().iter().any(|&v| a.neg_contains(v))
        };
        if overlap && a.fact() != b.fact() {
            return Some(ConflictCase::SameBDifferentFacts);
        }
        return None;
    }
    let bi_in_xj = b.x_set().contains(a.b());
    let bj_in_xi = a.x_set().contains(b.b());
    match (bi_in_xj, bj_in_xi) {
        (true, false) => {
            // Case 2(a): tp_j[Bi] ∈ Tp_i[Bi].
            let tpj_bi = b.evidence_value(a.b()).expect("Bi ∈ Xj");
            if a.neg_contains(tpj_bi) {
                return Some(ConflictCase::BiInXj);
            }
            None
        }
        (false, true) => {
            // Case 2(b): tp_i[Bj] ∈ Tp_j[Bj].
            let tpi_bj = a.evidence_value(b.b()).expect("Bj ∈ Xi");
            if b.neg_contains(tpi_bj) {
                return Some(ConflictCase::BjInXi);
            }
            None
        }
        (true, true) => {
            // Case 2(c): both conditions.
            let tpj_bi = b.evidence_value(a.b()).expect("Bi ∈ Xj");
            let tpi_bj = a.evidence_value(b.b()).expect("Bj ∈ Xi");
            if a.neg_contains(tpj_bi) && b.neg_contains(tpi_bj) {
                return Some(ConflictCase::Mutual);
            }
            None
        }
        // Case 2(d): trivially consistent.
        (false, false) => None,
    }
}

/// Check a whole rule set pairwise (Proposition 3), stopping after
/// `max_conflicts` conflicts (pass 1 for the paper's "real case" behaviour
/// of Fig 9, `usize::MAX` for the worst case that inspects all pairs).
pub fn is_consistent_characterize(rules: &RuleSet, max_conflicts: usize) -> ConsistencyReport {
    is_consistent_characterize_observed(rules, max_conflicts, &obs::NoopObserver)
}

/// [`is_consistent_characterize`] with observer hooks (`pairs_checked`,
/// one `conflict_found` per conflicting pair).
pub fn is_consistent_characterize_observed<O: obs::RepairObserver>(
    rules: &RuleSet,
    max_conflicts: usize,
    observer: &O,
) -> ConsistencyReport {
    let mut report = ConsistencyReport::default();
    let n = rules.len();
    'outer: for i in 0..n {
        for j in (i + 1)..n {
            report.pairs_checked += 1;
            if let Some(case) =
                check_pair(rules.rule(RuleId(i as u32)), rules.rule(RuleId(j as u32)))
            {
                report.conflicts.push(Conflict {
                    first: RuleId(i as u32),
                    second: RuleId(j as u32),
                    case,
                    witness: None,
                });
                if report.conflicts.len() >= max_conflicts {
                    break 'outer;
                }
            }
        }
    }
    report.observe(observer);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    fn rule(
        schema: &Schema,
        sy: &mut SymbolTable,
        ev: &[(&str, &str)],
        b: &str,
        neg: &[&str],
        fact: &str,
    ) -> FixingRule {
        FixingRule::from_named(schema, sy, ev, b, neg, fact).unwrap()
    }

    #[test]
    fn example_10_phi1_prime_and_phi2_consistent() {
        // φ'1 (China) and φ2 (Canada) key on the same attribute with
        // different constants: no tuple matches both.
        let s = schema();
        let mut sy = SymbolTable::new();
        let p1p = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        );
        let p2 = rule(
            &s,
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        );
        assert_eq!(check_pair(&p1p, &p2), None);
    }

    #[test]
    fn example_10_phi1_prime_and_phi3_mutual_conflict() {
        // The paper's flagship inconsistency: capital ∈ X3, country ∈ X'1 —
        // case 2(c).
        let s = schema();
        let mut sy = SymbolTable::new();
        let p1p = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        );
        let p3 = rule(
            &s,
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        );
        assert_eq!(check_pair(&p1p, &p3), Some(ConflictCase::Mutual));
        // Symmetric invocation gives the same verdict.
        assert_eq!(check_pair(&p3, &p1p), Some(ConflictCase::Mutual));
    }

    #[test]
    fn phi1_and_phi3_consistent_after_expert_shrink() {
        // Removing Tokyo from φ'1's negatives (the §5.3 expert fix) makes
        // the pair consistent.
        let s = schema();
        let mut sy = SymbolTable::new();
        let p1 = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        );
        let p3 = rule(
            &s,
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        );
        assert_eq!(check_pair(&p1, &p3), None);
    }

    #[test]
    fn case1_same_b_conflict() {
        let s = schema();
        let mut sy = SymbolTable::new();
        // Same evidence, overlapping negatives, different facts.
        let a = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        );
        let b = rule(
            &s,
            &mut sy,
            &[("conf", "ICDE")],
            "capital",
            &["Shanghai"],
            "Nanjing",
        );
        assert_eq!(check_pair(&a, &b), Some(ConflictCase::SameBDifferentFacts));
    }

    #[test]
    fn case1_same_fact_is_consistent() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let a = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        );
        let b = rule(
            &s,
            &mut sy,
            &[("conf", "ICDE")],
            "capital",
            &["Shanghai"],
            "Beijing",
        );
        assert_eq!(check_pair(&a, &b), None);
    }

    #[test]
    fn case1_disjoint_negatives_is_consistent() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let a = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        );
        let b = rule(
            &s,
            &mut sy,
            &[("conf", "ICDE")],
            "capital",
            &["Hongkong"],
            "Nanjing",
        );
        assert_eq!(check_pair(&a, &b), None);
    }

    #[test]
    fn case2a_conflict_and_nonconflict() {
        let s = schema();
        let mut sy = SymbolTable::new();
        // φi repairs capital with Tokyo among negatives; φj uses capital =
        // Tokyo as evidence to repair city. Bi (capital) ∈ Xj; Bj (city) ∉ Xi.
        let phi_i = rule(
            &s,
            &mut sy,
            &[("country", "Japan")],
            "capital",
            &["Tokyo"],
            "Kyoto",
        );
        let phi_j = rule(
            &s,
            &mut sy,
            &[("capital", "Tokyo")],
            "city",
            &["Osaka"],
            "Tokyo",
        );
        assert_eq!(check_pair(&phi_i, &phi_j), Some(ConflictCase::BiInXj));
        assert_eq!(check_pair(&phi_j, &phi_i), Some(ConflictCase::BjInXi));
        // If φj's evidence constant is not a negative of φi, no conflict.
        let phi_j2 = rule(
            &s,
            &mut sy,
            &[("capital", "Kyoto")],
            "city",
            &["Osaka"],
            "Kyoto2",
        );
        assert_eq!(check_pair(&phi_i, &phi_j2), None);
    }

    #[test]
    fn case2d_disjoint_updates_consistent() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let a = rule(
            &s,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        );
        let b = rule(
            &s,
            &mut sy,
            &[("conf", "ICDE")],
            "city",
            &["Paris"],
            "Tokyo",
        );
        assert_eq!(check_pair(&a, &b), None);
    }

    #[test]
    fn ruleset_driver_reports_pairs_and_stops_early() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s.clone());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        rs.push_named(
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        let full = is_consistent_characterize(&rs, usize::MAX);
        assert!(!full.is_consistent());
        assert_eq!(full.pairs_checked, 3);
        assert_eq!(full.conflicts.len(), 1);
        let early = is_consistent_characterize(&rs, 1);
        assert_eq!(early.conflicts.len(), 1);
        assert!(early.pairs_checked <= full.pairs_checked);
    }

    #[test]
    fn empty_and_singleton_sets_are_consistent() {
        let s = schema();
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(s);
        assert!(is_consistent_characterize(&rs, usize::MAX).is_consistent());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        let rep = is_consistent_characterize(&rs, usize::MAX);
        assert!(rep.is_consistent());
        assert_eq!(rep.pairs_checked, 0);
    }
}
