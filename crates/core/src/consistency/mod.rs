//! Consistency analysis of rule sets (§4.2, §5).
//!
//! A set `Σ` is *consistent* iff every tuple has a unique fix. Proposition 3
//! reduces this to **pairwise** consistency, so both checkers enumerate
//! pairs of distinct rules and decide each pair:
//!
//! * [`characterize`] — `isConsist_r` (Fig 4): decide a pair by a constant
//!   number of pattern-set tests; `O(size(Σ)²)` overall.
//! * [`enumerate`] — `isConsist_t` (§5.2.1): build the finite witness-tuple
//!   space from the pair's constants and chase every candidate in all
//!   orders.
//!
//! [`resolve`] implements the §5.3 strategies for repairing an inconsistent
//! rule set (conservative removal; negative-pattern shrinking).

pub mod characterize;
pub mod enumerate;
pub mod resolve;

pub use characterize::{is_consistent_characterize, is_consistent_characterize_observed};
pub use enumerate::{is_consistent_enumerate, is_consistent_enumerate_observed};

use std::sync::atomic::{AtomicUsize, Ordering};

use relation::Symbol;

use crate::ruleset::{RuleId, RuleSet};

/// Which of the Fig 4 cases witnessed the conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictCase {
    /// Case 1: `Bi = Bj`, overlapping negative patterns, different facts.
    SameBDifferentFacts,
    /// Case 2(a): `Bi ∈ Xj`, `Bj ∉ Xi`, `tp_j[Bi] ∈ Tp_i[Bi]`.
    BiInXj,
    /// Case 2(b): symmetric to 2(a).
    BjInXi,
    /// Case 2(c): mutual — `Bi ∈ Xj` and `Bj ∈ Xi`, both pattern conditions.
    Mutual,
}

impl ConflictCase {
    /// Stable snake_case name, used as the observer's metric suffix
    /// (`consistency.conflicts.<name>`).
    pub fn name(self) -> &'static str {
        match self {
            ConflictCase::SameBDifferentFacts => "same_b_different_facts",
            ConflictCase::BiInXj => "bi_in_xj",
            ConflictCase::BjInXi => "bj_in_xi",
            ConflictCase::Mutual => "mutual",
        }
    }
}

/// A pair of rules that can drive some tuple to two different fixpoints.
#[derive(Debug, Clone)]
pub struct Conflict {
    /// First rule of the pair (smaller id).
    pub first: RuleId,
    /// Second rule of the pair.
    pub second: RuleId,
    /// Which characterization case fired.
    pub case: ConflictCase,
    /// A witness tuple reaching two fixpoints, when produced by the
    /// enumeration checker (`isConsist_r` decides without materialising
    /// one).
    pub witness: Option<Vec<Symbol>>,
}

/// Result of a consistency check.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    /// Conflicting pairs found (bounded by the checker's `max_conflicts`).
    pub conflicts: Vec<Conflict>,
    /// Number of rule pairs examined before returning.
    pub pairs_checked: usize,
}

impl ConsistencyReport {
    /// True when no conflict was found.
    pub fn is_consistent(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// Feed this run's counts into an observer: total pairs examined, one
    /// `conflict_found` per conflict (tagged with its Fig 4 case name).
    pub fn observe<O: obs::RepairObserver>(&self, observer: &O) {
        observer.pairs_checked(self.pairs_checked);
        for conflict in &self.conflicts {
            observer.conflict_found(conflict.case.name());
        }
    }

    /// Distinct rules participating in some conflict.
    pub fn conflicting_rules(&self) -> Vec<RuleId> {
        let mut ids: Vec<RuleId> = self
            .conflicts
            .iter()
            .flat_map(|c| [c.first, c.second])
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }
}

/// Decide whether the evidence patterns of two rules are *compatible*:
/// `Xi ∩ Xj = ∅` or `tp_i[Xi ∩ Xj] = tp_j[Xi ∩ Xj]` (line 2 of Fig 4).
/// Incompatible evidence means no tuple can match both rules, so the pair is
/// consistent by Lemma 4.
pub(crate) fn evidence_compatible(
    a: &crate::rule::FixingRule,
    b: &crate::rule::FixingRule,
) -> bool {
    let shared = a.x_set().intersect(b.x_set());
    shared
        .iter()
        .all(|attr| a.evidence_value(attr) == b.evidence_value(attr))
}

/// Incrementally check one candidate rule against an already-consistent
/// set: by Proposition 3 only the `|Σ|` new pairs need inspection, so
/// authoring workflows can validate each added rule in `O(size(Σ))` instead
/// of re-running the full `O(size(Σ)²)` check.
///
/// Returns the conflicts the candidate would introduce (empty = safe to
/// push).
pub fn check_candidate(rules: &RuleSet, candidate: &crate::rule::FixingRule) -> Vec<Conflict> {
    let candidate_id = RuleId(rules.len() as u32);
    rules
        .iter()
        .filter_map(|(id, existing)| {
            characterize::check_pair(existing, candidate).map(|case| Conflict {
                first: id,
                second: candidate_id,
                case,
                witness: None,
            })
        })
        .collect()
}

/// A materialized proof of a pairwise conflict: a concrete tuple together
/// with two distinct fixes it can reach under the pair, depending on which
/// rule fires first. This is the evidence a diagnostic can show a rule
/// author — "on this valuation, your rules disagree".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictWitness {
    /// The witness tuple; attributes untouched by either rule hold
    /// [`enumerate::WILDCARD`].
    pub tuple: Vec<Symbol>,
    /// Two distinct fixpoints reachable from `tuple`, in sorted order.
    pub fixes: [Vec<Symbol>; 2],
}

/// Materialize a [`ConflictWitness`] for a conflict reported by either
/// checker. Enumerates the pair's candidate-tuple space (skipped, returning
/// `None`, when larger than `max_candidates`) and chases the witness tuple
/// in all rule orders; deterministic because the enumeration order and the
/// fixpoint set ([`crate::semantics::all_fixes`], a `BTreeSet`) are.
pub fn conflict_witness(
    rules: &RuleSet,
    conflict: &Conflict,
    max_candidates: usize,
) -> Option<ConflictWitness> {
    let a = rules.rule(conflict.first);
    let b = rules.rule(conflict.second);
    if enumerate::enumeration_size(a, b) > max_candidates {
        return None;
    }
    let tuple = match &conflict.witness {
        Some(tuple) => tuple.clone(),
        None => enumerate::check_pair_enumerate(a, b, rules.schema().arity())?,
    };
    let mut fixes = crate::semantics::all_fixes(&[a, b], &tuple).into_iter();
    match (fixes.next(), fixes.next()) {
        (Some(first), Some(second)) => Some(ConflictWitness {
            tuple,
            fixes: [first, second],
        }),
        _ => None,
    }
}

/// Map a linear pair index `p` (row-major over the strict upper triangle)
/// back to the `(i, j)` it enumerates, `i < j < n`.
fn pair_at(n: usize, mut p: usize) -> (usize, usize) {
    let mut i = 0;
    loop {
        let row = n - 1 - i;
        if p < row {
            return (i, i + 1 + p);
        }
        p -= row;
        i += 1;
    }
}

/// Parallel `isConsist_r`: partition the `|Σ|·(|Σ|-1)/2` rule pairs into
/// contiguous chunks across `num_threads` scoped workers, each deciding its
/// pairs with [`characterize::check_pair`] in ascending pair order.
///
/// Semantics match [`is_consistent_characterize`] with `max_conflicts = 1`
/// (the paper's "real case" of Fig 9): the check stops at the first
/// inconsistency. Workers publish the lowest conflicting pair index they
/// find through a shared atomic and bail out once every pair they still owe
/// is above it, so the reported conflict is **deterministically the
/// lowest-indexed conflicting pair** regardless of thread timing. Only
/// `pairs_checked` is timing-dependent (how far the losing workers got
/// before noticing); it is still bounded by the total pair count and equals
/// it on consistent sets.
pub fn is_consistent_parallel(rules: &RuleSet, num_threads: usize) -> ConsistencyReport {
    is_consistent_parallel_observed(rules, num_threads, &obs::NoopObserver)
}

/// [`is_consistent_parallel`] with observer hooks (`pairs_checked`, one
/// `conflict_found` for the winning conflict, as in the sequential
/// checker).
pub fn is_consistent_parallel_observed<O: obs::RepairObserver>(
    rules: &RuleSet,
    num_threads: usize,
    observer: &O,
) -> ConsistencyReport {
    let n = rules.len();
    let total = n.saturating_sub(1) * n / 2;
    let mut report = ConsistencyReport::default();
    if total == 0 {
        report.observe(observer);
        return report;
    }
    let num_threads = num_threads.max(1).min(total);
    let chunk = total.div_ceil(num_threads);
    // Lowest conflicting pair index seen so far, across all workers.
    let best = AtomicUsize::new(usize::MAX);
    let mut examined_total = 0usize;
    let mut winner: Option<(usize, Conflict)> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for w in 0..num_threads {
            let start = w * chunk;
            let end = total.min(start + chunk);
            if start >= end {
                break;
            }
            let best = &best;
            handles.push(scope.spawn(move || {
                let (mut i, mut j) = pair_at(n, start);
                let mut examined = 0usize;
                let mut found: Option<(usize, Conflict)> = None;
                for p in start..end {
                    // Someone already has a conflict at a lower index than
                    // anything left in this chunk: nothing we could find
                    // would win, stop early.
                    if p >= best.load(Ordering::Relaxed) {
                        break;
                    }
                    examined += 1;
                    if let Some(case) = characterize::check_pair(
                        rules.rule(RuleId(i as u32)),
                        rules.rule(RuleId(j as u32)),
                    ) {
                        best.fetch_min(p, Ordering::Relaxed);
                        found = Some((
                            p,
                            Conflict {
                                first: RuleId(i as u32),
                                second: RuleId(j as u32),
                                case,
                                witness: None,
                            },
                        ));
                        break;
                    }
                    j += 1;
                    if j == n {
                        i += 1;
                        j = i + 1;
                    }
                }
                (examined, found)
            }));
        }
        for h in handles {
            let (examined, found) = h.join().expect("consistency worker panicked");
            examined_total += examined;
            // A worker only ever reports its chunk's first conflict; keep
            // the globally lowest pair index. The worker owning that pair
            // always reaches it (no lower conflict exists to stop it), so
            // the winner is deterministic.
            if let Some((p, conflict)) = found {
                if winner.as_ref().is_none_or(|(wp, _)| p < *wp) {
                    winner = Some((p, conflict));
                }
            }
        }
    });
    report.pairs_checked = examined_total;
    report.conflicts.extend(winner.map(|(_, c)| c));
    report.observe(observer);
    report
}

/// Convenience: check a whole rule set with both algorithms and assert they
/// agree (used by tests and the eval harness in debug runs).
pub fn check_both_agree(rules: &RuleSet) -> (ConsistencyReport, ConsistencyReport) {
    let r = is_consistent_characterize(rules, usize::MAX);
    let t = is_consistent_enumerate(rules, usize::MAX);
    debug_assert_eq!(r.is_consistent(), t.is_consistent());
    (r, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    #[test]
    fn evidence_compatibility() {
        let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
        let mut sy = SymbolTable::new();
        let china = crate::rule::FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        let canada = crate::rule::FixingRule::from_named(
            &schema,
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        let disjoint = crate::rule::FixingRule::from_named(
            &schema,
            &mut sy,
            &[("conf", "ICDE")],
            "city",
            &["Paris"],
            "Tokyo",
        )
        .unwrap();
        // Same X, different constants: incompatible.
        assert!(!evidence_compatible(&china, &canada));
        // Disjoint X: compatible.
        assert!(evidence_compatible(&china, &disjoint));
        // Identity: compatible.
        assert!(evidence_compatible(&china, &china));
    }

    #[test]
    fn conflict_witness_materializes_two_fixes() {
        // Example 8: φ'1 (Tokyo among the negatives) conflicts with φ3.
        let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut rules = RuleSet::new(schema.clone());
        rules
            .push_named(
                &mut sy,
                &[("country", "China")],
                "capital",
                &["Shanghai", "Hongkong", "Tokyo"],
                "Beijing",
            )
            .unwrap();
        rules
            .push_named(
                &mut sy,
                &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
                "country",
                &["China"],
                "Japan",
            )
            .unwrap();
        let report = is_consistent_characterize(&rules, usize::MAX);
        assert_eq!(report.conflicts.len(), 1);
        let witness =
            conflict_witness(&rules, &report.conflicts[0], 1 << 16).expect("witness space is tiny");
        assert_ne!(witness.fixes[0], witness.fixes[1]);
        // The two fixes disagree on country and/or capital.
        let country = schema.attr("country").unwrap().index();
        let capital = schema.attr("capital").unwrap().index();
        assert!(
            witness.fixes[0][country] != witness.fixes[1][country]
                || witness.fixes[0][capital] != witness.fixes[1][capital]
        );
        // A zero budget refuses to enumerate.
        assert_eq!(conflict_witness(&rules, &report.conflicts[0], 0), None);
    }

    #[test]
    fn pair_index_mapping_roundtrips() {
        let n = 7;
        let mut p = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(pair_at(n, p), (i, j));
                p += 1;
            }
        }
    }

    #[test]
    fn parallel_checker_matches_sequential() {
        let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
        let mut sy = SymbolTable::new();

        // Consistent set: all pairs examined, no conflict, any thread count.
        let mut good = RuleSet::new(schema.clone());
        good.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        good.push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        good.push_named(
            &mut sy,
            &[("country", "Japan")],
            "capital",
            &["Kyoto"],
            "Tokyo",
        )
        .unwrap();
        for threads in [1, 2, 8] {
            let rep = is_consistent_parallel(&good, threads);
            assert!(rep.is_consistent());
            assert_eq!(rep.pairs_checked, 3, "consistent: every pair examined");
        }
        assert!(good.check_consistency_parallel(4).is_consistent());

        // Inconsistent set with two conflicting pairs: every thread count
        // reports exactly the lowest-indexed one (same as the sequential
        // checker stopped at the first conflict).
        let mut bad = RuleSet::new(schema);
        bad.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        )
        .unwrap();
        bad.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Nanjing",
        )
        .unwrap();
        bad.push_named(
            &mut sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        let seq = is_consistent_characterize(&bad, 1);
        assert_eq!(seq.conflicts.len(), 1);
        for threads in [1, 2, 3, 16] {
            let par = is_consistent_parallel(&bad, threads);
            assert_eq!(par.conflicts.len(), 1);
            let (s, p) = (&seq.conflicts[0], &par.conflicts[0]);
            assert_eq!((s.first, s.second, s.case), (p.first, p.second, p.case));
            assert!(par.pairs_checked <= 3);
        }

        // Degenerate sets.
        let empty = RuleSet::new(Schema::new("T", ["a", "b"]).unwrap());
        assert!(is_consistent_parallel(&empty, 4).is_consistent());
        assert_eq!(is_consistent_parallel(&empty, 4).pairs_checked, 0);
    }

    #[test]
    fn report_collects_conflicting_rules() {
        let report = ConsistencyReport {
            conflicts: vec![
                Conflict {
                    first: RuleId(0),
                    second: RuleId(2),
                    case: ConflictCase::Mutual,
                    witness: None,
                },
                Conflict {
                    first: RuleId(2),
                    second: RuleId(3),
                    case: ConflictCase::BiInXj,
                    witness: None,
                },
            ],
            pairs_checked: 6,
        };
        assert!(!report.is_consistent());
        assert_eq!(
            report.conflicting_rules(),
            vec![RuleId(0), RuleId(2), RuleId(3)]
        );
    }
}
