//! Resolving inconsistent rule sets (§5.3) and the §5.1 workflow.
//!
//! Two strategies are offered:
//!
//! * [`Strategy::Conservative`] — remove every rule participating in a
//!   conflict. Guaranteed to terminate (the rule count strictly decreases)
//!   but may discard useful rules, as the paper notes.
//! * [`Strategy::ShrinkNegatives`] — the automated "expert": for each
//!   conflict, delete the offending negative pattern(s) (e.g. remove
//!   `Tokyo` from φ'1, recovering φ1), falling back to rule removal when a
//!   rule would be left with no negative patterns. Mirrors the restriction
//!   that experts may only *remove* negative patterns or rules, never add —
//!   which is what makes the workflow terminate.

use relation::Symbol;

use crate::consistency::{is_consistent_characterize, Conflict, ConflictCase};
use crate::ruleset::{RuleId, RuleSet};

/// How to resolve conflicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Drop every rule involved in any conflict.
    Conservative,
    /// Shrink negative patterns where possible, drop rules otherwise.
    ShrinkNegatives,
}

/// One resolution action taken by the workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// A rule was removed outright.
    RemovedRule(RuleId),
    /// One negative pattern was removed from a rule.
    RemovedNegative(RuleId, Symbol),
}

/// Outcome of [`ensure_consistent`]: the actions applied, in order, and the
/// number of check→resolve rounds.
#[derive(Debug, Clone, Default)]
pub struct ResolutionLog {
    /// Actions in application order.
    pub actions: Vec<Action>,
    /// Number of consistency checks performed (workflow rounds + final).
    pub rounds: usize,
}

impl ResolutionLog {
    /// Count of removed rules.
    pub fn rules_removed(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, Action::RemovedRule(_)))
            .count()
    }

    /// Count of removed negative patterns.
    pub fn negatives_removed(&self) -> usize {
        self.actions
            .iter()
            .filter(|a| matches!(a, Action::RemovedNegative(..)))
            .count()
    }
}

/// Run the §5.1 workflow: check, resolve, repeat until consistent.
///
/// Termination: every round either removes a negative pattern or a rule, and
/// neither can be added back, so the total pattern count strictly decreases.
pub fn ensure_consistent(rules: &mut RuleSet, strategy: Strategy) -> ResolutionLog {
    let mut log = ResolutionLog::default();
    loop {
        log.rounds += 1;
        // Step 1: check. One conflict at a time keeps rule ids stable
        // within a round (`remove_rules` renumbers).
        let report = is_consistent_characterize(rules, 1);
        let Some(conflict) = report.conflicts.first() else {
            return log; // Step 3: consistent.
        };
        // Step 2: resolve.
        match strategy {
            Strategy::Conservative => {
                let victims = [conflict.first, conflict.second];
                for v in victims {
                    log.actions.push(Action::RemovedRule(v));
                }
                rules.remove_rules(&victims);
            }
            Strategy::ShrinkNegatives => resolve_by_shrinking(rules, conflict, &mut log),
        }
    }
}

/// Batch variant of [`ensure_consistent`] with
/// [`Strategy::ShrinkNegatives`]: each round runs one full pairwise check,
/// applies the shrink move for *every* reported conflict, defers rule
/// removals to the end of the round (so conflict rule-ids stay valid), and
/// repeats. Equivalent fixpoint guarantees, far fewer `O(size(Σ)²)` check
/// rounds — use this for machine-generated rule sets in the thousands.
pub fn ensure_consistent_batch(rules: &mut RuleSet) -> ResolutionLog {
    let mut log = ResolutionLog::default();
    loop {
        log.rounds += 1;
        let report = is_consistent_characterize(rules, usize::MAX);
        if report.conflicts.is_empty() {
            return log;
        }
        let mut to_remove: Vec<RuleId> = Vec::new();
        for conflict in &report.conflicts {
            if to_remove.contains(&conflict.first) || to_remove.contains(&conflict.second) {
                continue; // already resolved by a pending removal
            }
            // Re-verify: an earlier shrink this round may have already
            // resolved this pair.
            let Some(case) =
                characterize::check_pair(rules.rule(conflict.first), rules.rule(conflict.second))
            else {
                continue;
            };
            let refreshed = Conflict {
                first: conflict.first,
                second: conflict.second,
                case,
                witness: None,
            };
            resolve_by_shrinking_deferred(rules, &refreshed, &mut log, &mut to_remove);
        }
        to_remove.sort();
        to_remove.dedup();
        rules.remove_rules(&to_remove);
    }
}

use crate::consistency::characterize;

/// Shrink move that defers rule removals into `to_remove` instead of
/// compacting immediately.
fn resolve_by_shrinking_deferred(
    rules: &mut RuleSet,
    conflict: &Conflict,
    log: &mut ResolutionLog,
    to_remove: &mut Vec<RuleId>,
) {
    let (i, j) = (conflict.first, conflict.second);
    let shrink_deferred = |rules: &mut RuleSet,
                           holder: RuleId,
                           evidence_rule: RuleId,
                           log: &mut ResolutionLog,
                           to_remove: &mut Vec<RuleId>| {
        let value = rules
            .rule(evidence_rule)
            .evidence_value(rules.rule(holder).b());
        match value {
            Some(v) if rules.rule_mut(holder).remove_negative_pattern(v) => {
                log.actions.push(Action::RemovedNegative(holder, v));
            }
            _ => {
                log.actions.push(Action::RemovedRule(holder));
                to_remove.push(holder);
            }
        }
    };
    match conflict.case {
        ConflictCase::SameBDifferentFacts => {
            let overlap: Vec<Symbol> = {
                let (a, b) = (rules.rule(i), rules.rule(j));
                a.neg()
                    .iter()
                    .copied()
                    .filter(|&v| b.neg_contains(v))
                    .collect()
            };
            let victim = if rules.rule(i).neg().len() >= rules.rule(j).neg().len() {
                i
            } else {
                j
            };
            let mut shrunk = false;
            for v in overlap {
                if rules.rule_mut(victim).remove_negative_pattern(v) {
                    log.actions.push(Action::RemovedNegative(victim, v));
                    shrunk = true;
                }
            }
            if !shrunk {
                log.actions.push(Action::RemovedRule(victim));
                to_remove.push(victim);
            }
        }
        ConflictCase::BiInXj => shrink_deferred(rules, i, j, log, to_remove),
        ConflictCase::BjInXi => shrink_deferred(rules, j, i, log, to_remove),
        ConflictCase::Mutual => {
            if rules.rule(i).neg().len() >= rules.rule(j).neg().len() {
                shrink_deferred(rules, i, j, log, to_remove);
            } else {
                shrink_deferred(rules, j, i, log, to_remove);
            }
        }
    }
}

/// Apply the expert move for one conflict: remove the negative pattern that
/// enables the conflict; if the rule would be left empty, remove the rule.
fn resolve_by_shrinking(rules: &mut RuleSet, conflict: &Conflict, log: &mut ResolutionLog) {
    let (i, j) = (conflict.first, conflict.second);
    match conflict.case {
        ConflictCase::SameBDifferentFacts => {
            // Remove the overlap from the rule with the larger negative set
            // (it is the more speculative one).
            let overlap: Vec<Symbol> = {
                let (a, b) = (rules.rule(i), rules.rule(j));
                a.neg()
                    .iter()
                    .copied()
                    .filter(|&v| b.neg_contains(v))
                    .collect()
            };
            let victim = if rules.rule(i).neg().len() >= rules.rule(j).neg().len() {
                i
            } else {
                j
            };
            let mut shrunk = false;
            for v in overlap {
                if rules.rule_mut(victim).remove_negative_pattern(v) {
                    log.actions.push(Action::RemovedNegative(victim, v));
                    shrunk = true;
                }
            }
            if !shrunk {
                log.actions.push(Action::RemovedRule(victim));
                rules.remove_rules(&[victim]);
            }
        }
        ConflictCase::BiInXj => shrink_one(rules, i, j, log),
        ConflictCase::BjInXi => shrink_one(rules, j, i, log),
        ConflictCase::Mutual => {
            // Breaking either direction suffices; shrink the rule with the
            // larger negative set first (the φ'1-style over-enrichment).
            if rules.rule(i).neg().len() >= rules.rule(j).neg().len() {
                shrink_one(rules, i, j, log);
            } else {
                shrink_one(rules, j, i, log);
            }
        }
    }
}

/// For a 2(a)-shaped conflict where `holder`'s negative patterns contain
/// `evidence_rule`'s evidence constant on `holder.b()`: remove that value
/// from `holder`, or remove `holder` when it cannot shrink.
fn shrink_one(rules: &mut RuleSet, holder: RuleId, evidence_rule: RuleId, log: &mut ResolutionLog) {
    let value = rules
        .rule(evidence_rule)
        .evidence_value(rules.rule(holder).b());
    match value {
        Some(v) if rules.rule_mut(holder).remove_negative_pattern(v) => {
            log.actions.push(Action::RemovedNegative(holder, v));
        }
        _ => {
            log.actions.push(Action::RemovedRule(holder));
            rules.remove_rules(&[holder]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    /// The Example 8 set: φ'1 (over-broad), φ2, φ3.
    fn example8(sy: &mut SymbolTable) -> RuleSet {
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong", "Tokyo"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
        rs.push_named(
            sy,
            &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
            "country",
            &["China"],
            "Japan",
        )
        .unwrap();
        rs
    }

    #[test]
    fn shrinking_recovers_phi1_and_keeps_phi3() {
        // The expert fix of §5.3: remove Tokyo from φ'1, keep φ3.
        let mut sy = SymbolTable::new();
        let mut rs = example8(&mut sy);
        let log = ensure_consistent(&mut rs, Strategy::ShrinkNegatives);
        assert!(rs.check_consistency().is_consistent());
        assert_eq!(rs.len(), 3, "no rule should be dropped");
        assert_eq!(log.negatives_removed(), 1);
        assert_eq!(log.rules_removed(), 0);
        // φ'1 lost exactly Tokyo.
        let tokyo = sy.get("Tokyo").unwrap();
        assert!(!rs.rule(RuleId(0)).neg_contains(tokyo));
        assert_eq!(rs.rule(RuleId(0)).neg().len(), 2);
    }

    #[test]
    fn conservative_drops_both_conflicting_rules() {
        let mut sy = SymbolTable::new();
        let mut rs = example8(&mut sy);
        let log = ensure_consistent(&mut rs, Strategy::Conservative);
        assert!(rs.check_consistency().is_consistent());
        // φ'1 and φ3 are gone; φ2 survives.
        assert_eq!(rs.len(), 1);
        assert_eq!(log.rules_removed(), 2);
        let country = rs.schema().attr("country").unwrap();
        assert_eq!(rs.rule(RuleId(0)).evidence_value(country), sy.get("Canada"));
    }

    #[test]
    fn consistent_set_is_untouched() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        let log = ensure_consistent(&mut rs, Strategy::ShrinkNegatives);
        assert!(log.actions.is_empty());
        assert_eq!(log.rounds, 1);
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn same_b_conflict_shrinks_overlap() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            &mut sy,
            &[("conf", "ICDE")],
            "capital",
            &["Shanghai"],
            "Nanjing",
        )
        .unwrap();
        let log = ensure_consistent(&mut rs, Strategy::ShrinkNegatives);
        assert!(rs.check_consistency().is_consistent());
        assert_eq!(rs.len(), 2);
        assert!(log.negatives_removed() >= 1);
        // The larger rule (φ0) lost Shanghai; the pair no longer overlaps.
        let shanghai = sy.get("Shanghai").unwrap();
        assert!(!rs.rule(RuleId(0)).neg_contains(shanghai));
    }

    #[test]
    fn shrink_falls_back_to_removal_when_rule_would_empty() {
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        // Single-negative rules conflicting on capital: shrinking would
        // empty them, so one rule must be dropped.
        rs.push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai"],
            "Beijing",
        )
        .unwrap();
        rs.push_named(
            &mut sy,
            &[("conf", "ICDE")],
            "capital",
            &["Shanghai"],
            "Nanjing",
        )
        .unwrap();
        let log = ensure_consistent(&mut rs, Strategy::ShrinkNegatives);
        assert!(rs.check_consistency().is_consistent());
        assert_eq!(rs.len(), 1);
        assert_eq!(log.rules_removed(), 1);
    }

    #[test]
    fn batch_resolution_matches_sequential_fixpoint_guarantees() {
        let mut sy = SymbolTable::new();
        let mut seq = example8(&mut sy);
        let mut bat = seq.clone();
        ensure_consistent(&mut seq, Strategy::ShrinkNegatives);
        let log = ensure_consistent_batch(&mut bat);
        assert!(bat.check_consistency().is_consistent());
        assert_eq!(bat.len(), 3, "batch also keeps all three rules");
        assert_eq!(log.negatives_removed(), 1);
        // Same surviving semantics: φ'1 shrunk to φ1.
        let tokyo = sy.get("Tokyo").unwrap();
        assert!(!bat.rule(RuleId(0)).neg_contains(tokyo));
    }

    #[test]
    fn batch_resolution_scales_on_many_conflicts() {
        // 60 rules that pairwise conflict in waves; batch mode must settle
        // in a handful of rounds.
        let mut sy = SymbolTable::new();
        let mut rs = RuleSet::new(schema());
        for i in 0..60 {
            let country = format!("C{}", i % 6);
            rs.push_named(
                &mut sy,
                &[("country", country.as_str())],
                "capital",
                &["w1", "w2"],
                // Same evidence groups get different facts → case-1
                // conflicts inside each group of 10.
                &format!("F{i}"),
            )
            .unwrap();
        }
        let log = ensure_consistent_batch(&mut rs);
        assert!(rs.check_consistency().is_consistent());
        assert!(log.rounds <= 10, "took {} rounds", log.rounds);
    }

    #[test]
    fn workflow_terminates_on_heavily_conflicting_sets() {
        // Many mutually conflicting rules; both strategies must converge.
        let mut sy = SymbolTable::new();
        for strategy in [Strategy::Conservative, Strategy::ShrinkNegatives] {
            let mut rs = RuleSet::new(schema());
            for fact in ["A", "B", "C", "D", "E"] {
                rs.push_named(
                    &mut sy,
                    &[("country", "X")],
                    "capital",
                    &["bad1", "bad2"],
                    fact,
                )
                .unwrap();
            }
            let log = ensure_consistent(&mut rs, strategy);
            assert!(rs.check_consistency().is_consistent(), "{strategy:?}");
            assert!(log.rounds < 100, "{strategy:?} looped");
        }
    }
}
