//! Property tests for the rule-file and portable serializations: arbitrary
//! rule sets round-trip bit-for-bit through both formats.

use proptest::prelude::*;

use fixrules::io::{format_rules, from_portable, parse_rules, to_portable};
use fixrules::{FixingRule, RuleSet};
use relation::{Schema, SymbolTable};

/// Printable-ASCII values including quotes, backslashes, braces, commas.
fn value() -> impl Strategy<Value = String> {
    "[ -~]{1,12}"
}

#[derive(Debug, Clone)]
struct RawRule {
    evidence: Vec<(u16, String)>,
    b: u16,
    neg: Vec<String>,
    fact: String,
}

fn raw_rule() -> impl Strategy<Value = RawRule> {
    (
        proptest::collection::vec((0u16..5, value()), 1..3),
        0u16..5,
        proptest::collection::vec(value(), 1..4),
        value(),
    )
        .prop_map(|(evidence, b, neg, fact)| RawRule {
            evidence,
            b,
            neg,
            fact,
        })
}

fn build(raws: Vec<RawRule>) -> (RuleSet, SymbolTable) {
    let schema = Schema::new("R", ["a0", "a1", "a2", "a3", "a4"]).unwrap();
    let mut sy = SymbolTable::new();
    let mut rules = RuleSet::new(schema.clone());
    for raw in raws {
        let ev: Vec<(&str, &str)> = raw
            .evidence
            .iter()
            .map(|(a, v)| (["a0", "a1", "a2", "a3", "a4"][*a as usize], v.as_str()))
            .collect();
        let negs: Vec<&str> = raw.neg.iter().map(String::as_str).collect();
        let b = ["a0", "a1", "a2", "a3", "a4"][raw.b as usize];
        if let Ok(rule) = FixingRule::from_named(&schema, &mut sy, &ev, b, &negs, &raw.fact) {
            rules.push(rule);
        }
    }
    (rules, sy)
}

proptest! {
    /// `.frl` text round-trips arbitrary content.
    #[test]
    fn frl_round_trip(raws in proptest::collection::vec(raw_rule(), 0..6)) {
        let (rules, mut sy) = build(raws);
        let text = format_rules(&rules, &sy);
        let parsed = parse_rules(&text, rules.schema(), &mut sy).unwrap();
        prop_assert_eq!(parsed.len(), rules.len());
        for ((_, a), (_, b)) in rules.iter().zip(parsed.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    /// Portable JSON round-trips semantically (fresh interner).
    #[test]
    fn portable_round_trip(raws in proptest::collection::vec(raw_rule(), 0..6)) {
        let (rules, sy) = build(raws);
        let doc = to_portable(&rules, &sy);
        let json = doc.to_json_string();
        let doc2 = fixrules::io::PortableRuleSet::from_json_str(&json).unwrap();
        prop_assert_eq!(&doc2, &doc);
        let mut sy2 = SymbolTable::new();
        let rebuilt = from_portable(&doc2, &mut sy2).unwrap();
        prop_assert_eq!(rebuilt.len(), rules.len());
        for ((_, a), (_, b)) in rules.iter().zip(rebuilt.iter()) {
            prop_assert_eq!(
                a.display(rules.schema(), &sy),
                b.display(rebuilt.schema(), &sy2)
            );
        }
        // Consistency classification is representation-independent.
        prop_assert_eq!(
            rules.check_consistency().is_consistent(),
            rebuilt.check_consistency().is_consistent()
        );
    }
}
