//! Cross-driver provenance integration: every repair driver feeds the
//! ledger through `cell_repaired`, and the resulting ledger (a) replays
//! the dirty table into the repaired table exactly, and (b) re-derives the
//! final value of every updated cell through its causal chain.

use fixrules::provenance::{ProvenanceLedger, ProvenanceObserver};
use fixrules::repair::{
    crepair_table_observed, lrepair_table_observed, par_lrepair_table_observed,
    stream_repair_csv_observed, LRepairIndex,
};
use fixrules::RuleSet;
use obs::{MetricsObserver, MetricsRegistry, Tee};
use relation::{Schema, SymbolTable, Table};

fn schema() -> Schema {
    Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
}

/// The four rules of Fig 8 (φ1–φ4).
fn fig8_rules(sy: &mut SymbolTable) -> RuleSet {
    let mut rs = RuleSet::new(schema());
    rs.push_named(
        sy,
        &[("country", "China")],
        "capital",
        &["Shanghai", "Hongkong"],
        "Beijing",
    )
    .unwrap();
    rs.push_named(
        sy,
        &[("country", "Canada")],
        "capital",
        &["Toronto"],
        "Ottawa",
    )
    .unwrap();
    rs.push_named(
        sy,
        &[("capital", "Tokyo"), ("city", "Tokyo"), ("conf", "ICDE")],
        "country",
        &["China"],
        "Japan",
    )
    .unwrap();
    rs.push_named(
        sy,
        &[("capital", "Beijing"), ("conf", "ICDE")],
        "city",
        &["Hongkong"],
        "Shanghai",
    )
    .unwrap();
    rs
}

const FIG1_ROWS: [[&str; 5]; 4] = [
    ["George", "China", "Beijing", "Beijing", "SIGMOD"],
    ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
    ["Peter", "China", "Tokyo", "Tokyo", "ICDE"],
    ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
];

fn fig1_table(sy: &mut SymbolTable, schema: &Schema) -> Table {
    let mut t = Table::new(schema.clone());
    for row in FIG1_ROWS {
        t.push_strs(sy, &row).unwrap();
    }
    t
}

fn fig1_csv() -> String {
    let mut text = String::from("name,country,capital,city,conf\n");
    for row in FIG1_ROWS {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    text
}

/// Replay the ledger over a fresh dirty copy and verify it lands exactly
/// on `repaired`; then verify each updated cell's chain ends in its final
/// value and is internally consistent (evidence attrs written earlier).
fn verify_ledger(dirty: &Table, repaired: &Table, ledger: &ProvenanceLedger, updates: usize) {
    assert_eq!(ledger.len(), updates, "one record per update");
    let mut replayed = dirty.clone();
    let applied = ledger.replay(&mut replayed).unwrap();
    assert_eq!(applied, updates);
    assert_eq!(
        replayed.diff_cells(repaired).unwrap(),
        0,
        "replay must re-derive the repaired table"
    );
    for rec in ledger.records() {
        let chain = ledger.chain_for(rec.row, rec.attr);
        assert!(!chain.is_empty(), "updated cell must have a chain");
        let last = chain.last().unwrap();
        assert_eq!(
            repaired.cell(rec.row, rec.attr),
            last.new,
            "chain must end in the cell's final value"
        );
        // Every chain link is justified: its evidence attributes were
        // either untouched originals or written by an earlier link.
        assert!(chain
            .windows(2)
            .all(|w| (w[0].row, w[0].ordinal) < (w[1].row, w[1].ordinal)));
    }
}

#[test]
fn crepair_ledger_replays_and_explains() {
    let mut sy = SymbolTable::new();
    let rules = fig8_rules(&mut sy);
    let dirty = fig1_table(&mut sy, &rules.schema().clone());
    let mut repaired = dirty.clone();
    let ledger = ProvenanceLedger::new();
    let observer = ProvenanceObserver::new(&rules, &ledger);
    let outcome = crepair_table_observed(&rules, &mut repaired, &observer);
    assert_eq!(outcome.total_updates(), 4);
    verify_ledger(&dirty, &repaired, &ledger, 4);
}

#[test]
fn lrepair_ledger_replays_and_explains() {
    let mut sy = SymbolTable::new();
    let rules = fig8_rules(&mut sy);
    let index = LRepairIndex::build(&rules);
    let dirty = fig1_table(&mut sy, &rules.schema().clone());
    let mut repaired = dirty.clone();
    let ledger = ProvenanceLedger::new();
    let observer = ProvenanceObserver::new(&rules, &ledger);
    let outcome = lrepair_table_observed(&rules, &index, &mut repaired, &observer);
    assert_eq!(outcome.total_updates(), 4);
    verify_ledger(&dirty, &repaired, &ledger, 4);
}

#[test]
fn parallel_ledger_matches_sequential_canonical_order() {
    let mut sy = SymbolTable::new();
    let rules = fig8_rules(&mut sy);
    let index = LRepairIndex::build(&rules);
    // A larger table so the rows actually shard across workers.
    let mut dirty = Table::new(rules.schema().clone());
    for i in 0..200 {
        let row = FIG1_ROWS[i % FIG1_ROWS.len()];
        dirty.push_strs(&mut sy, &row).unwrap();
    }
    let mut seq = dirty.clone();
    let seq_ledger = ProvenanceLedger::new();
    let seq_obs = ProvenanceObserver::new(&rules, &seq_ledger);
    let so = lrepair_table_observed(&rules, &index, &mut seq, &seq_obs);

    let mut par = dirty.clone();
    let par_ledger = ProvenanceLedger::new();
    let par_obs = ProvenanceObserver::new(&rules, &par_ledger);
    let po = par_lrepair_table_observed(&rules, &index, &mut par, 4, &par_obs);

    assert_eq!(so.total_updates(), po.total_updates());
    // Records arrive worker-interleaved but the canonical (row, ordinal)
    // view is identical to the sequential driver's.
    assert_eq!(seq_ledger.records(), par_ledger.records());
    verify_ledger(&dirty, &par, &par_ledger, po.total_updates());
}

#[test]
fn stream_ledger_replays_against_materialized_table() {
    let mut sy = SymbolTable::new();
    let rules = fig8_rules(&mut sy);
    let index = LRepairIndex::build(&rules);
    let csv = fig1_csv();
    // Materialize dirty/repaired views over the *same* symbol table the
    // stream driver interns into, so ledger symbols align.
    let dirty = fig1_table(&mut sy, &rules.schema().clone());
    let ledger = ProvenanceLedger::new();
    let observer = ProvenanceObserver::new(&rules, &ledger);
    let mut out = Vec::new();
    let stats =
        stream_repair_csv_observed(&rules, &index, &mut sy, csv.as_bytes(), &mut out, &observer)
            .unwrap();
    assert_eq!(stats.updates, 4);
    let mut repaired = Table::new(rules.schema().clone());
    let streamed = String::from_utf8(out).unwrap();
    for line in streamed.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        repaired.push_strs(&mut sy, &cells).unwrap();
    }
    verify_ledger(&dirty, &repaired, &ledger, 4);
}

#[test]
fn ledger_composes_with_metrics_via_tee() {
    let mut sy = SymbolTable::new();
    let rules = fig8_rules(&mut sy);
    let dirty = fig1_table(&mut sy, &rules.schema().clone());
    let mut repaired = dirty.clone();
    let registry = MetricsRegistry::new();
    let metrics = MetricsObserver::new(&registry);
    let ledger = ProvenanceLedger::new();
    let prov = ProvenanceObserver::new(&rules, &ledger);
    let outcome = crepair_table_observed(&rules, &mut repaired, &Tee(&metrics, &prov));
    assert_eq!(outcome.total_updates(), 4);
    assert_eq!(ledger.len(), 4);
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot
            .get("counters")
            .unwrap()
            .get("repair.rules_applied")
            .unwrap()
            .as_i64(),
        Some(4),
    );
}
