//! Property-based tests for the fixing-rule machinery.
//!
//! These exercise the paper's meta-theorems on randomly generated rule sets
//! and tuples over a small vocabulary (dense vocabularies maximise rule
//! interaction):
//!
//! 1. the chase terminates within `|R|` applications (§4.1);
//! 2. `isConsist_t` and `isConsist_r` agree (Theorem 1 / Lemma 4 / Fig 4);
//! 3. for consistent Σ, all application orders agree (Church–Rosser) and
//!    `cRepair` = `lRepair`;
//! 4. repaired tuples are fixpoints;
//! 5. resolution always terminates in a consistent set.

use proptest::prelude::*;

use fixrules::consistency::resolve::{ensure_consistent, Strategy as ResolveStrategy};
use fixrules::consistency::{is_consistent_characterize, is_consistent_parallel};
use fixrules::provenance::{ProvenanceLedger, ProvenanceObserver};
use fixrules::repair::{
    columnar_table_observed, compiled_table_observed, crepair_table_observed, crepair_tuple,
    lrepair_table_observed, lrepair_tuple, par_columnar_table_observed,
    par_compiled_table_observed, par_lrepair_table, CompiledEngine, LRepairIndex, LRepairScratch,
    PlanCache, RuleProgram,
};
use fixrules::semantics::{all_fixes, is_fixpoint};
use fixrules::{FixingRule, RuleSet};
use relation::{AttrId, AttrSet, ColumnTable, Schema, Symbol, Table};

const ARITY: usize = 5;
const VOCAB: u32 = 6;

fn schema() -> Schema {
    Schema::new("R", ["a0", "a1", "a2", "a3", "a4"]).unwrap()
}

/// A raw rule description: evidence (attr, value) pairs, b, negatives, fact.
#[derive(Debug, Clone)]
struct RawRule {
    evidence: Vec<(u16, u32)>,
    b: u16,
    neg: Vec<u32>,
    fact: u32,
}

fn raw_rule() -> impl Strategy<Value = RawRule> {
    (
        proptest::collection::vec((0u16..ARITY as u16, 0u32..VOCAB), 1..3),
        0u16..ARITY as u16,
        proptest::collection::vec(0u32..VOCAB, 1..4),
        0u32..VOCAB,
    )
        .prop_map(|(evidence, b, neg, fact)| RawRule {
            evidence,
            b,
            neg,
            fact,
        })
}

/// Materialise raw rules, silently dropping invalid ones (duplicate
/// evidence attrs, b ∈ X, fact ∈ neg) — the generator is intentionally
/// sloppy so the validator is also exercised.
fn build_ruleset(raws: &[RawRule]) -> RuleSet {
    let mut rs = RuleSet::new(schema());
    for raw in raws {
        let evidence: Vec<(AttrId, Symbol)> = raw
            .evidence
            .iter()
            .map(|&(a, v)| (AttrId(a), Symbol(v)))
            .collect();
        let neg: Vec<Symbol> = raw.neg.iter().map(|&v| Symbol(v)).collect();
        if let Ok(rule) = FixingRule::new(evidence, AttrId(raw.b), neg, Symbol(raw.fact)) {
            rs.push(rule);
        }
    }
    rs
}

fn rulesets() -> impl Strategy<Value = RuleSet> {
    proptest::collection::vec(raw_rule(), 0..8).prop_map(|raws| build_ruleset(&raws))
}

fn tuples() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(0u32..VOCAB, ARITY..=ARITY)
        .prop_map(|vs| vs.into_iter().map(Symbol).collect())
}

proptest! {
    /// §4.1: the all-orders chase terminates and every reached fix is a
    /// fixpoint; no sequence exceeds |R| applications (implied by
    /// termination of the bounded DFS).
    #[test]
    fn chase_terminates_and_reaches_fixpoints(rs in rulesets(), t in tuples()) {
        let refs: Vec<&FixingRule> = rs.rules().iter().collect();
        let fixes = all_fixes(&refs, &t);
        prop_assert!(!fixes.is_empty());
        for f in &fixes {
            // Recompute the assured set along *some* path is unavailable
            // here, but a fix must at least be stable under the empty
            // assured set for rules whose evidence it fails to match...
            // the strong check: chasing a fix yields only itself when Σ is
            // consistent; in general each fix differs from t only on B
            // attributes.
            for (i, (&orig, &now)) in t.iter().zip(f.iter()).enumerate() {
                if orig != now {
                    let attr = AttrId(i as u16);
                    prop_assert!(rs.rules().iter().any(|r| r.b() == attr),
                        "changed attribute {attr} is not any rule's B");
                }
            }
        }
    }

    /// Theorem 1 machinery: `check_both_agree` holds — the two consistency
    /// checkers reach the same verdict on every generated rule set, flag the
    /// same conflicting pairs, and every reported conflict materializes a
    /// genuine two-fix witness.
    #[test]
    fn checkers_agree(rs in rulesets()) {
        let (r, t) = fixrules::consistency::check_both_agree(&rs);
        prop_assert_eq!(r.is_consistent(), t.is_consistent(),
            "characterize={:?} enumerate={:?}", r.conflicts, t.conflicts);
        // They flag the same pairs...
        let pairs = |rep: &fixrules::ConsistencyReport| {
            let mut v: Vec<(u32, u32)> = rep.conflicts.iter()
                .map(|c| (c.first.0, c.second.0)).collect();
            v.sort();
            v
        };
        prop_assert_eq!(pairs(&r), pairs(&t));
        // ...and the same conflicting-rule sets.
        prop_assert_eq!(r.conflicting_rules(), t.conflicting_rules());
        // Every conflict is real: a tuple the pair chases to two different
        // fixpoints (the witness space is tiny under this vocabulary).
        for conflict in r.conflicts.iter().chain(t.conflicts.iter()) {
            let w = fixrules::consistency::conflict_witness(&rs, conflict, 1 << 16)
                .expect("conflict must yield a witness within budget");
            prop_assert_ne!(&w.fixes[0], &w.fixes[1]);
        }
    }

    /// Church–Rosser (§6.1): for consistent Σ every tuple has exactly one
    /// fix, and cRepair/lRepair both compute it.
    #[test]
    fn consistent_sets_give_unique_fixes(rs in rulesets(), t in tuples()) {
        if !is_consistent_characterize(&rs, 1).is_consistent() {
            // Conditioning by rejection would starve the generator; just
            // resolve the set first.
            let mut rs2 = rs.clone();
            ensure_consistent(&mut rs2, ResolveStrategy::ShrinkNegatives);
            let refs: Vec<&FixingRule> = rs2.rules().iter().collect();
            let fixes = all_fixes(&refs, &t);
            prop_assert_eq!(fixes.len(), 1);
            return Ok(());
        }
        let refs: Vec<&FixingRule> = rs.rules().iter().collect();
        let fixes = all_fixes(&refs, &t);
        prop_assert_eq!(fixes.len(), 1, "consistent Σ must give a unique fix");
        let unique = fixes.into_iter().next().unwrap();

        let mut via_chase = t.clone();
        crepair_tuple(&rs, &mut via_chase);
        prop_assert_eq!(&via_chase, &unique);

        let index = LRepairIndex::build(&rs);
        let mut scratch = LRepairScratch::new(rs.len());
        let mut via_linear = t.clone();
        lrepair_tuple(&rs, &index, &mut scratch, &mut via_linear);
        prop_assert_eq!(&via_linear, &unique);

        // The formal fixpoint property is relative to the accumulated
        // assured set (NOT a fresh empty one: a rule's fact may lie in
        // another same-B rule's negative patterns without making the pair
        // inconsistent, so an independent second repair run may legally
        // re-fire). Recompute the assured set from the fired rules and
        // check no rule is properly applicable.
        let mut replay = t.clone();
        let ups = crepair_tuple(&rs, &mut replay);
        let mut assured = AttrSet::EMPTY;
        for u in &ups {
            assured.union_with(rs.rule(u.rule).assured_delta());
        }
        prop_assert!(is_fixpoint(rs.rules().iter(), &replay, assured));
    }

    /// lRepair on a full table equals per-tuple cRepair, and the parallel
    /// driver equals the sequential one.
    #[test]
    fn table_drivers_agree(rs in rulesets(),
                           rows in proptest::collection::vec(tuples(), 1..24)) {
        // Work on a consistent set.
        let mut rs = rs;
        ensure_consistent(&mut rs, ResolveStrategy::ShrinkNegatives);
        let mut table = Table::new(rs.schema().clone());
        for r in &rows {
            table.push_row(r).unwrap();
        }
        let index = LRepairIndex::build(&rs);
        let mut by_c = table.clone();
        fixrules::repair::crepair_table(&rs, &mut by_c);
        let mut by_l = table.clone();
        fixrules::repair::lrepair_table(&rs, &index, &mut by_l);
        let mut by_p = table.clone();
        par_lrepair_table(&rs, &index, &mut by_p, 3);
        prop_assert_eq!(by_c.diff_cells(&by_l).unwrap(), 0);
        prop_assert_eq!(by_c.diff_cells(&by_p).unwrap(), 0);
    }

    /// Fixes are stable: after repair, no rule is properly applicable given
    /// the assured set accumulated from the fired rules.
    #[test]
    fn repaired_tuple_is_fixpoint(rs in rulesets(), t in tuples()) {
        let mut rs = rs;
        ensure_consistent(&mut rs, ResolveStrategy::ShrinkNegatives);
        let mut fixed = t.clone();
        let ups = crepair_tuple(&rs, &mut fixed);
        let mut assured = AttrSet::EMPTY;
        for u in &ups {
            assured.union_with(rs.rule(u.rule).assured_delta());
        }
        prop_assert!(is_fixpoint(rs.rules().iter(), &fixed, assured));
    }

    /// The compiled engines are drop-in replacements: on random consistent
    /// rule sets, `compiled(Chase)` reproduces `cRepair`'s provenance
    /// ledger byte for byte and `compiled(Linear)` reproduces `lRepair`'s —
    /// including the engine-specific `round` stamps — for every combination
    /// of plan cache (off / on) and worker count (1 / 4), along with the
    /// final table.
    #[test]
    fn compiled_engines_reproduce_ledgers(rs in rulesets(),
                                          rows in proptest::collection::vec(tuples(), 1..24)) {
        let mut rs = rs;
        ensure_consistent(&mut rs, ResolveStrategy::ShrinkNegatives);
        let program = RuleProgram::compile(&rs);
        let index = LRepairIndex::build(&rs);
        let mut table0 = Table::new(rs.schema().clone());
        for r in &rows {
            table0.push_row(r).unwrap();
        }
        // References: the uncached sequential drivers.
        let mut chase_table = table0.clone();
        let chase_ledger = ProvenanceLedger::new();
        crepair_table_observed(
            &rs, &mut chase_table, &ProvenanceObserver::new(&rs, &chase_ledger));
        let chase_records = chase_ledger.records();
        let mut linear_table = table0.clone();
        let linear_ledger = ProvenanceLedger::new();
        lrepair_table_observed(
            &rs, &index, &mut linear_table, &ProvenanceObserver::new(&rs, &linear_ledger));
        let linear_records = linear_ledger.records();

        for (engine, ref_table, ref_records) in [
            (CompiledEngine::Chase, &chase_table, &chase_records),
            (CompiledEngine::Linear, &linear_table, &linear_records),
        ] {
            for threads in [1usize, 4] {
                for cached in [false, true] {
                    let cache = cached.then(|| if threads > 1 {
                        PlanCache::sharded(4)
                    } else {
                        PlanCache::unbounded()
                    });
                    let mut t = table0.clone();
                    let ledger = ProvenanceLedger::new();
                    let obs = ProvenanceObserver::new(&rs, &ledger);
                    if threads > 1 {
                        par_compiled_table_observed(
                            &rs, &program, engine, cache.as_ref(), &mut t, threads, &obs);
                    } else {
                        compiled_table_observed(
                            &rs, &program, engine, cache.as_ref(), &mut t, &obs);
                    }
                    prop_assert_eq!(ref_table.diff_cells(&t).unwrap(), 0,
                        "{:?} cached={} threads={}: tables diverged", engine, cached, threads);
                    prop_assert_eq!(&ledger.records(), ref_records,
                        "{:?} cached={} threads={}: ledgers diverged", engine, cached, threads);
                }
            }
        }
    }

    /// The columnar group-by-plan drivers are drop-in replacements for the
    /// row-at-a-time compiled drivers: identical final table and identical
    /// provenance ledger — byte for byte, `round` stamps included — for
    /// both engines, with and without a plan cache, sequential and
    /// sharded across workers. Batch accounting must always tie out:
    /// every row is either a group representative or scattered.
    #[test]
    fn columnar_drivers_reproduce_ledgers(rs in rulesets(),
                                          rows in proptest::collection::vec(tuples(), 1..24)) {
        let mut rs = rs;
        ensure_consistent(&mut rs, ResolveStrategy::ShrinkNegatives);
        let program = RuleProgram::compile(&rs);
        let mut table0 = Table::new(rs.schema().clone());
        for r in &rows {
            table0.push_row(r).unwrap();
        }
        for engine in [CompiledEngine::Chase, CompiledEngine::Linear] {
            // Reference: the row-at-a-time compiled driver, uncached.
            let mut ref_table = table0.clone();
            let ref_ledger = ProvenanceLedger::new();
            compiled_table_observed(
                &rs, &program, engine, None, &mut ref_table,
                &ProvenanceObserver::new(&rs, &ref_ledger));
            let ref_records = ref_ledger.records();
            for threads in [1usize, 4] {
                for cached in [false, true] {
                    let cache = cached.then(|| if threads > 1 {
                        PlanCache::sharded(4)
                    } else {
                        PlanCache::unbounded()
                    });
                    let mut cols = ColumnTable::from(&table0);
                    let ledger = ProvenanceLedger::new();
                    let obs = ProvenanceObserver::new(&rs, &ledger);
                    let (_, batch) = if threads > 1 {
                        par_columnar_table_observed(
                            &rs, &program, engine, cache.as_ref(), &mut cols, threads, &obs)
                    } else {
                        columnar_table_observed(
                            &rs, &program, engine, cache.as_ref(), &mut cols, &obs)
                    };
                    let t = cols.to_table();
                    prop_assert_eq!(ref_table.diff_cells(&t).unwrap(), 0,
                        "{:?} cached={} threads={}: tables diverged", engine, cached, threads);
                    prop_assert_eq!(&ledger.records(), &ref_records,
                        "{:?} cached={} threads={}: ledgers diverged", engine, cached, threads);
                    prop_assert_eq!(batch.rows, rows.len());
                    prop_assert_eq!(batch.rows, batch.groups + batch.scattered,
                        "{:?} cached={} threads={}: batch accounting", engine, cached, threads);
                }
            }
        }
    }

    /// The parallel pairwise consistency checker agrees with the sequential
    /// one on the verdict, and on inconsistent sets reports exactly the
    /// lowest-indexed conflicting pair, at any worker count.
    #[test]
    fn parallel_consistency_agrees(rs in rulesets()) {
        let seq = is_consistent_characterize(&rs, 1);
        for threads in [1usize, 3, 8] {
            let par = is_consistent_parallel(&rs, threads);
            prop_assert_eq!(seq.is_consistent(), par.is_consistent());
            if let (Some(s), Some(p)) = (seq.conflicts.first(), par.conflicts.first()) {
                prop_assert_eq!(s.first, p.first);
                prop_assert_eq!(s.second, p.second);
                prop_assert_eq!(s.case, p.case);
            }
        }
    }

    /// Both resolution strategies terminate in a consistent set, and
    /// shrinking never drops more rules than the conservative strategy.
    #[test]
    fn resolution_terminates_consistent(rs in rulesets()) {
        let mut cons = rs.clone();
        let mut shr = rs.clone();
        ensure_consistent(&mut cons, ResolveStrategy::Conservative);
        ensure_consistent(&mut shr, ResolveStrategy::ShrinkNegatives);
        prop_assert!(is_consistent_characterize(&cons, 1).is_consistent());
        prop_assert!(is_consistent_characterize(&shr, 1).is_consistent());
        prop_assert!(shr.len() >= cons.len(),
            "shrinking should preserve at least as many rules");
    }

    /// Assured attributes grow monotonically along any repair and updates
    /// only ever touch un-assured B attributes.
    #[test]
    fn assured_set_monotone(rs in rulesets(), t in tuples()) {
        let mut rs = rs;
        ensure_consistent(&mut rs, ResolveStrategy::ShrinkNegatives);
        let mut fixed = t.clone();
        let ups = crepair_tuple(&rs, &mut fixed);
        let mut assured = AttrSet::EMPTY;
        for u in &ups {
            prop_assert!(!assured.contains(u.attr),
                "update touched an already-assured attribute");
            let before = assured;
            assured.union_with(rs.rule(u.rule).assured_delta());
            prop_assert!(before.is_subset(assured));
        }
    }
}
