//! Observability must not change repair results, and the no-op observer
//! must not make the hot path measurably slower — the `*_observed` drivers
//! monomorphize over the observer, so with [`obs::NoopObserver`] every hook
//! compiles to nothing.

use std::time::{Duration, Instant};

use fixrules::repair::{lrepair_table, lrepair_table_observed, LRepairIndex};
use fixrules::RuleSet;
use obs::{AttributionObserver, MetricsObserver, MetricsRegistry, NoopObserver, RuleLabel};
use relation::{Schema, SymbolTable, Table};

fn labels() -> Vec<RuleLabel> {
    ["r0", "r1"]
        .iter()
        .map(|r| RuleLabel {
            rule: r.to_string(),
            attr: "capital".to_string(),
        })
        .collect()
}

fn setup(rows: usize) -> (RuleSet, Table) {
    let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
    let mut sy = SymbolTable::new();
    let mut rules = RuleSet::new(schema.clone());
    rules
        .push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
    rules
        .push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
    let capitals = ["Beijing", "Shanghai", "Hongkong", "Toronto"].map(|v| sy.intern(v));
    let countries = ["China", "Canada"].map(|v| sy.intern(v));
    let names: Vec<_> = (0..97).map(|i| sy.intern(&format!("n{i}"))).collect();
    let filler = sy.intern("x");
    let mut table = Table::new(schema);
    for i in 0..rows {
        table
            .push_row(&[
                names[i % names.len()],
                countries[i % 2],
                capitals[i % 4],
                filler,
                filler,
            ])
            .unwrap();
    }
    (rules, table)
}

#[test]
fn observed_repair_matches_plain_repair() {
    let (rules, table) = setup(2_000);
    let index = LRepairIndex::build(&rules);

    let mut plain = table.clone();
    let out_plain = lrepair_table(&rules, &index, &mut plain);

    let mut noop = table.clone();
    let out_noop = lrepair_table_observed(&rules, &index, &mut noop, &NoopObserver);

    let registry = MetricsRegistry::new();
    let mut metered = table.clone();
    let out_metered = lrepair_table_observed(
        &rules,
        &index,
        &mut metered,
        &MetricsObserver::new(&registry),
    );

    assert_eq!(out_plain.updates, out_noop.updates);
    assert_eq!(out_plain.updates, out_metered.updates);
    for i in 0..plain.len() {
        assert_eq!(plain.row(i), noop.row(i));
        assert_eq!(plain.row(i), metered.row(i));
    }

    // The metered run really counted: every touched tuple and update shows
    // up in the registry.
    let snap = registry.snapshot();
    let counters = snap.get("counters").unwrap();
    let get = |name: &str| counters.get(name).and_then(|v| v.as_i64()).unwrap();
    assert_eq!(get("repair.tuples"), 2_000);
    assert_eq!(get("repair.updates") as usize, out_plain.total_updates());
    assert_eq!(
        get("repair.tuples_touched") as usize,
        out_plain.rows_touched()
    );
}

/// The attribution observer neither changes results nor loses a single
/// application: the per-rule split sums back to the driver's own totals,
/// and on this synthetic workload each rule's count is exactly known
/// (every fourth row matches r0, every fourth matches r1).
#[test]
fn attribution_observer_matches_plain_and_attributes_per_rule() {
    let (rules, table) = setup(2_000);
    let index = LRepairIndex::build(&rules);

    let mut plain = table.clone();
    let out_plain = lrepair_table(&rules, &index, &mut plain);

    let registry = MetricsRegistry::new();
    let attribution = AttributionObserver::new(&registry, labels()).with_timing(true);
    let mut attributed = table.clone();
    let out_attr = lrepair_table_observed(&rules, &index, &mut attributed, &attribution);

    assert_eq!(out_plain.updates, out_attr.updates);
    for i in 0..plain.len() {
        assert_eq!(plain.row(i), attributed.row(i));
    }

    let profile = attribution.profile();
    let total: u64 = profile.rows.iter().map(|r| r.applied).sum();
    assert_eq!(total as usize, out_plain.total_updates());
    let applied_of = |rule: &str| {
        profile
            .rows
            .iter()
            .find(|r| r.rule == rule)
            .map(|r| r.applied)
            .unwrap()
    };
    // setup(): China rows are even, Hongkong sits at i % 4 == 2 (r0 fires);
    // Canada rows are odd, Toronto at i % 4 == 3 (r1 fires).
    assert_eq!(applied_of("r0"), 500);
    assert_eq!(applied_of("r1"), 500);
    // Timing was opted in, so latency histograms actually sampled.
    assert!(profile.rows.iter().any(|r| r.latency_samples > 0));
    // The same split is scrapeable as labeled registry series.
    let snap = registry.snapshot();
    assert_eq!(
        snap.get("counters")
            .unwrap()
            .get("repair.rule.applied{attr=\"capital\",rule=\"r0\"}")
            .and_then(|v| v.as_i64()),
        Some(500)
    );
}

/// Smoke check, not a benchmark: the no-op observed driver must finish in
/// the same ballpark as the plain driver. The bound is deliberately loose
/// (3× + 10 ms on best-of-5) so scheduler noise can't flake it; a real
/// regression — an observer that allocates or locks per tuple — blows past
/// it by an order of magnitude.
#[test]
fn noop_observer_overhead_is_negligible() {
    let (rules, table) = setup(30_000);
    let index = LRepairIndex::build(&rules);

    let best_of = |f: &dyn Fn(&mut Table)| {
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let mut copy = table.clone();
            let start = Instant::now();
            f(&mut copy);
            best = best.min(start.elapsed());
        }
        best
    };

    let plain = best_of(&|t| {
        lrepair_table(&rules, &index, t);
    });
    let noop = best_of(&|t| {
        lrepair_table_observed(&rules, &index, t, &NoopObserver);
    });

    assert!(
        noop <= plain * 3 + Duration::from_millis(10),
        "no-op observed repair took {noop:?} vs plain {plain:?}"
    );

    // The attribution observer (timing off) is relaxed atomics per hook —
    // slower than no-op, but it must stay in the same ballpark too.
    let registry = MetricsRegistry::new();
    let attribution = AttributionObserver::new(&registry, labels());
    let attributed = best_of(&|t| {
        lrepair_table_observed(&rules, &index, t, &attribution);
    });
    assert!(
        attributed <= plain * 4 + Duration::from_millis(25),
        "attributed repair took {attributed:?} vs plain {plain:?}"
    );
}
