//! Observability must not change repair results, and the no-op observer
//! must not make the hot path measurably slower — the `*_observed` drivers
//! monomorphize over the observer, so with [`obs::NoopObserver`] every hook
//! compiles to nothing.

use std::time::{Duration, Instant};

use fixrules::repair::{lrepair_table, lrepair_table_observed, LRepairIndex};
use fixrules::RuleSet;
use obs::{MetricsObserver, MetricsRegistry, NoopObserver};
use relation::{Schema, SymbolTable, Table};

fn setup(rows: usize) -> (RuleSet, Table) {
    let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
    let mut sy = SymbolTable::new();
    let mut rules = RuleSet::new(schema.clone());
    rules
        .push_named(
            &mut sy,
            &[("country", "China")],
            "capital",
            &["Shanghai", "Hongkong"],
            "Beijing",
        )
        .unwrap();
    rules
        .push_named(
            &mut sy,
            &[("country", "Canada")],
            "capital",
            &["Toronto"],
            "Ottawa",
        )
        .unwrap();
    let capitals = ["Beijing", "Shanghai", "Hongkong", "Toronto"].map(|v| sy.intern(v));
    let countries = ["China", "Canada"].map(|v| sy.intern(v));
    let names: Vec<_> = (0..97).map(|i| sy.intern(&format!("n{i}"))).collect();
    let filler = sy.intern("x");
    let mut table = Table::new(schema);
    for i in 0..rows {
        table
            .push_row(&[
                names[i % names.len()],
                countries[i % 2],
                capitals[i % 4],
                filler,
                filler,
            ])
            .unwrap();
    }
    (rules, table)
}

#[test]
fn observed_repair_matches_plain_repair() {
    let (rules, table) = setup(2_000);
    let index = LRepairIndex::build(&rules);

    let mut plain = table.clone();
    let out_plain = lrepair_table(&rules, &index, &mut plain);

    let mut noop = table.clone();
    let out_noop = lrepair_table_observed(&rules, &index, &mut noop, &NoopObserver);

    let registry = MetricsRegistry::new();
    let mut metered = table.clone();
    let out_metered = lrepair_table_observed(
        &rules,
        &index,
        &mut metered,
        &MetricsObserver::new(&registry),
    );

    assert_eq!(out_plain.updates, out_noop.updates);
    assert_eq!(out_plain.updates, out_metered.updates);
    for i in 0..plain.len() {
        assert_eq!(plain.row(i), noop.row(i));
        assert_eq!(plain.row(i), metered.row(i));
    }

    // The metered run really counted: every touched tuple and update shows
    // up in the registry.
    let snap = registry.snapshot();
    let counters = snap.get("counters").unwrap();
    let get = |name: &str| counters.get(name).and_then(|v| v.as_i64()).unwrap();
    assert_eq!(get("repair.tuples"), 2_000);
    assert_eq!(get("repair.updates") as usize, out_plain.total_updates());
    assert_eq!(
        get("repair.tuples_touched") as usize,
        out_plain.rows_touched()
    );
}

/// Smoke check, not a benchmark: the no-op observed driver must finish in
/// the same ballpark as the plain driver. The bound is deliberately loose
/// (3× + 10 ms on best-of-5) so scheduler noise can't flake it; a real
/// regression — an observer that allocates or locks per tuple — blows past
/// it by an order of magnitude.
#[test]
fn noop_observer_overhead_is_negligible() {
    let (rules, table) = setup(30_000);
    let index = LRepairIndex::build(&rules);

    let best_of = |f: &dyn Fn(&mut Table)| {
        let mut best = Duration::MAX;
        for _ in 0..5 {
            let mut copy = table.clone();
            let start = Instant::now();
            f(&mut copy);
            best = best.min(start.elapsed());
        }
        best
    };

    let plain = best_of(&|t| {
        lrepair_table(&rules, &index, t);
    });
    let noop = best_of(&|t| {
        lrepair_table_observed(&rules, &index, t, &NoopObserver);
    });

    assert!(
        noop <= plain * 3 + Duration::from_millis(10),
        "no-op observed repair took {noop:?} vs plain {plain:?}"
    );
}
