//! Property tests for the log-bucketed histogram's quantile behavior.
//!
//! Quantiles report the *lower bound* of the bucket holding the requested
//! rank, so the guarantees under test are:
//!
//! * `quantile(q)` is monotone non-decreasing in `q`;
//! * `p50 ≤ p95 ≤ p99 ≤ quantile(1.0) ≤ max`;
//! * the relative under-reporting error is within the documented bound
//!   `(width - 1) / (lower + width - 1) ≤ 1/9` for values ≥ 8 (values
//!   below 8 are exact).

use obs::Histogram;
use proptest::prelude::*;

/// Worst-case relative error for the 8-sub-bucket layout (see
/// `obs::metrics::SUBBUCKETS_BITS`): the reported lower bound `L` of a
/// bucket of width `W` satisfies `(v - L) / v ≤ (W - 1) / (L + W - 1)`,
/// maximized at the first split bucket `[8, 10)` where it is `1/9`.
const MAX_RELATIVE_ERROR: f64 = 1.0 / 9.0;

fn histogram_of(samples: &[u64]) -> Histogram {
    let h = Histogram::default();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #[test]
    fn quantile_is_monotone_in_q(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = histogram_of(&samples);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(
            h.quantile(lo) <= h.quantile(hi),
            "quantile({lo}) = {} > quantile({hi}) = {}",
            h.quantile(lo),
            h.quantile(hi),
        );
    }

    #[test]
    fn standard_quantiles_are_ordered_and_below_max(
        samples in proptest::collection::vec(0u64..10_000_000, 1..200),
    ) {
        let h = histogram_of(&samples);
        let p50 = h.quantile(0.50);
        let p95 = h.quantile(0.95);
        let p99 = h.quantile(0.99);
        let top = h.quantile(1.0);
        prop_assert!(p50 <= p95 && p95 <= p99 && p99 <= top);
        prop_assert!(top <= h.max(), "quantile(1.0) = {top} > max = {}", h.max());
    }

    #[test]
    fn single_value_relative_error_is_bounded(v in 0u64..100_000_000) {
        let h = histogram_of(&[v]);
        let reported = h.quantile(1.0);
        prop_assert!(reported <= v, "bucket lower bound {reported} above sample {v}");
        if v < 8 {
            // The first 8 buckets hold 0..8 exactly.
            prop_assert_eq!(reported, v);
        } else {
            let err = (v - reported) as f64 / v as f64;
            prop_assert!(
                err <= MAX_RELATIVE_ERROR,
                "value {v} reported as {reported}: relative error {err} > 1/9",
            );
        }
    }
}
