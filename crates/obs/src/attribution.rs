//! Per-rule attribution: which fixing rules do the work, and at what cost.
//!
//! [`AttributionObserver`] is a [`RepairObserver`] that splits the
//! aggregate repair counters by rule, writing labeled series
//! (`repair.rule.applied{attr="city",rule="r3"}`, …) into a shared
//! [`MetricsRegistry`] and keeping the same handles for its own
//! [`AttributionProfile`] report. The hot path stays the usual relaxed
//! atomics: handles for every known rule are resolved at construction.
//!
//! The profile has two renderings with different determinism contracts:
//!
//! * [`AttributionProfile::render_table`] — human-ranked table including
//!   latency quantiles (wall-clock, run-dependent);
//! * [`AttributionProfile::to_json`] — machine output restricted to
//!   deterministic fields (counts and latency *sample counts*, never
//!   nanoseconds), so two identical runs serialize byte-identically.
//!
//! This crate stays a leaf: rules are described by plain
//! [`RuleLabel`] strings the caller derives from its rule set.

use std::collections::BTreeMap;

use crate::json::Json;
use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::observer::{CellFix, RepairObserver};

/// Caller-supplied description of one rule, used both as metric labels and
/// in profile rows. `rule` is a short stable id (e.g. `"r3"`), `attr` the
/// name of the attribute the rule's fix writes (its B attribute).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleLabel {
    pub rule: String,
    pub attr: String,
}

/// The labeled series one rule writes to. All counters live in the shared
/// registry, so `/metrics` and the profile report read the same cells.
#[derive(Debug, Clone)]
struct RuleSeries {
    applied: Counter,
    cells: Counter,
    rejected: Counter,
    plan_replays: Counter,
    latency: Histogram,
}

impl RuleSeries {
    fn new(registry: &MetricsRegistry, label: &RuleLabel) -> Self {
        let labels: &[(&str, &str)] = &[("attr", &label.attr), ("rule", &label.rule)];
        RuleSeries {
            applied: registry.counter_with("repair.rule.applied", labels),
            cells: registry.counter_with("repair.rule.cells", labels),
            rejected: registry.counter_with("repair.rule.rejected", labels),
            plan_replays: registry.counter_with("repair.rule.plan_replays", labels),
            latency: registry.histogram_with("repair.rule.latency_ns", labels),
        }
    }
}

/// A [`RepairObserver`] that attributes repair work to individual rules.
///
/// Out-of-range rule ids (possible when the observer outlives a rule-set
/// reload) aggregate into a catch-all `rule="other"` series rather than
/// being dropped. Enable `with_timing` to also collect per-rule latency
/// histograms; [`RepairObserver::wants_rule_timing`] then tells the
/// drivers to measure.
#[derive(Debug, Clone)]
pub struct AttributionObserver {
    labels: Vec<RuleLabel>,
    rules: Vec<RuleSeries>,
    other: RuleSeries,
    timing: bool,
}

impl AttributionObserver {
    /// Build an observer over `registry`, pre-registering series for every
    /// rule in `labels` (so unfired rules still appear, at zero).
    pub fn new(registry: &MetricsRegistry, labels: Vec<RuleLabel>) -> Self {
        let rules = labels
            .iter()
            .map(|l| RuleSeries::new(registry, l))
            .collect();
        let other = RuleSeries::new(
            registry,
            &RuleLabel {
                rule: "other".to_string(),
                attr: "?".to_string(),
            },
        );
        AttributionObserver {
            labels,
            rules,
            other,
            timing: false,
        }
    }

    /// Enable per-rule latency collection (drivers consult
    /// [`RepairObserver::wants_rule_timing`]).
    pub fn with_timing(mut self, timing: bool) -> Self {
        self.timing = timing;
        self
    }

    #[inline]
    fn series(&self, rule: usize) -> &RuleSeries {
        self.rules.get(rule).unwrap_or(&self.other)
    }

    /// Snapshot the per-rule aggregates as a report.
    pub fn profile(&self) -> AttributionProfile {
        let mut rows: Vec<ProfileRow> = self
            .labels
            .iter()
            .zip(&self.rules)
            .map(|(label, s)| ProfileRow {
                rule: label.rule.clone(),
                attr: label.attr.clone(),
                applied: s.applied.get(),
                cells: s.cells.get(),
                rejected: s.rejected.get(),
                plan_replays: s.plan_replays.get(),
                latency_samples: s.latency.count(),
                latency_sum_ns: s.latency.sum(),
                latency_p50_ns: s.latency.quantile(0.50),
                latency_p99_ns: s.latency.quantile(0.99),
            })
            .collect();
        if self.other.applied.get() + self.other.rejected.get() + self.other.cells.get() > 0 {
            rows.push(ProfileRow {
                rule: "other".to_string(),
                attr: "?".to_string(),
                applied: self.other.applied.get(),
                cells: self.other.cells.get(),
                rejected: self.other.rejected.get(),
                plan_replays: self.other.plan_replays.get(),
                latency_samples: self.other.latency.count(),
                latency_sum_ns: self.other.latency.sum(),
                latency_p50_ns: self.other.latency.quantile(0.50),
                latency_p99_ns: self.other.latency.quantile(0.99),
            });
        }
        // Ranked: most applications first; ties broken by declaration
        // order (stable sort), so the ranking is deterministic.
        rows.sort_by_key(|r| std::cmp::Reverse(r.applied));
        AttributionProfile { rows }
    }
}

impl RepairObserver for AttributionObserver {
    #[inline]
    fn rule_applied(&self, rule: usize, _attr: usize) {
        self.series(rule).applied.inc();
    }

    #[inline]
    fn cell_repaired(&self, fix: CellFix) {
        self.series(fix.rule).cells.inc();
    }

    #[inline]
    fn rule_rejected(&self, rule: usize) {
        self.series(rule).rejected.inc();
    }

    #[inline]
    fn rule_latency(&self, rule: usize, ns: u64) {
        self.series(rule).latency.record(ns);
    }

    #[inline]
    fn plan_replayed(&self, rule: usize, _attr: usize) {
        self.series(rule).plan_replays.inc();
    }

    #[inline]
    fn wants_rule_timing(&self) -> bool {
        self.timing
    }
}

/// One rule's row in an [`AttributionProfile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileRow {
    pub rule: String,
    pub attr: String,
    /// Rule applications (live evaluations plus plan replays).
    pub applied: u64,
    /// Cells repaired, attributed via the provenance hook.
    pub cells: u64,
    /// Evaluations that probed the rule's evidence and missed.
    pub rejected: u64,
    /// Applications that came from a memoized plan replay.
    pub plan_replays: u64,
    pub latency_samples: u64,
    pub latency_sum_ns: u64,
    pub latency_p50_ns: u64,
    pub latency_p99_ns: u64,
}

/// Ranked per-rule report from [`AttributionObserver::profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributionProfile {
    /// Rows ranked by `applied` descending (ties in declaration order).
    pub rows: Vec<ProfileRow>,
}

impl AttributionProfile {
    /// Rules that never fired (no applications and no replays).
    pub fn never_fired(&self) -> Vec<&ProfileRow> {
        self.rows
            .iter()
            .filter(|r| r.applied == 0 && r.plan_replays == 0)
            .collect()
    }

    /// Human-readable ranked table, latency quantiles included. Not
    /// byte-deterministic across runs (wall-clock); use [`Self::to_json`]
    /// for machine consumption.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<8} {:<12} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}\n",
            "rule", "attr", "applied", "cells", "rejected", "replays", "p50(ns)", "p99(ns)"
        ));
        for r in &self.rows {
            let (p50, p99) = if r.latency_samples > 0 {
                (r.latency_p50_ns.to_string(), r.latency_p99_ns.to_string())
            } else {
                ("-".to_string(), "-".to_string())
            };
            out.push_str(&format!(
                "{:<8} {:<12} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}\n",
                r.rule, r.attr, r.applied, r.cells, r.rejected, r.plan_replays, p50, p99
            ));
        }
        let unfired = self.never_fired();
        if !unfired.is_empty() {
            let names: Vec<&str> = unfired.iter().map(|r| r.rule.as_str()).collect();
            out.push_str(&format!(
                "note: {} rule(s) never fired: {}\n",
                names.len(),
                names.join(", ")
            ));
        }
        out
    }

    /// Deterministic JSON: ranked rows restricted to counts that are a
    /// pure function of the input (no nanosecond values — only the
    /// *number* of latency samples). Two identical runs serialize
    /// byte-identically.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|r| {
                Json::obj([
                    ("rule", Json::from(r.rule.as_str())),
                    ("attr", Json::from(r.attr.as_str())),
                    ("applied", Json::from(r.applied)),
                    ("cells", Json::from(r.cells)),
                    ("rejected", Json::from(r.rejected)),
                    ("plan_replays", Json::from(r.plan_replays)),
                    ("latency_samples", Json::from(r.latency_samples)),
                ])
            })
            .collect();
        let totals = Json::obj([
            (
                "applied",
                Json::from(self.rows.iter().map(|r| r.applied).sum::<u64>()),
            ),
            (
                "cells",
                Json::from(self.rows.iter().map(|r| r.cells).sum::<u64>()),
            ),
            (
                "rejected",
                Json::from(self.rows.iter().map(|r| r.rejected).sum::<u64>()),
            ),
            (
                "plan_replays",
                Json::from(self.rows.iter().map(|r| r.plan_replays).sum::<u64>()),
            ),
        ]);
        Json::Obj(BTreeMap::from([
            ("rules".to_string(), Json::Arr(rows)),
            ("totals".to_string(), totals),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::{NoopObserver, Tee};

    fn labels() -> Vec<RuleLabel> {
        vec![
            RuleLabel {
                rule: "r0".into(),
                attr: "city".into(),
            },
            RuleLabel {
                rule: "r1".into(),
                attr: "state".into(),
            },
            RuleLabel {
                rule: "r2".into(),
                attr: "city".into(),
            },
        ]
    }

    #[test]
    fn attribution_splits_by_rule_and_ranks() {
        let reg = MetricsRegistry::new();
        let obs = AttributionObserver::new(&reg, labels());
        obs.rule_applied(1, 0);
        obs.rule_applied(1, 0);
        obs.rule_applied(0, 1);
        obs.rule_rejected(0);
        obs.rule_rejected(2);
        obs.plan_replayed(1, 0);
        obs.cell_repaired(CellFix {
            row: 0,
            ordinal: 0,
            rule: 1,
            attr: 0,
            old: 1,
            new: 2,
            round: 1,
        });
        let profile = obs.profile();
        assert_eq!(profile.rows[0].rule, "r1");
        assert_eq!(profile.rows[0].applied, 2);
        assert_eq!(profile.rows[0].cells, 1);
        assert_eq!(profile.rows[0].plan_replays, 1);
        assert_eq!(profile.rows[1].rule, "r0");
        assert_eq!(profile.rows[1].rejected, 1);
        // r2 never fired and shows up in the dead-rule summary.
        let unfired: Vec<&str> = profile
            .never_fired()
            .iter()
            .map(|r| r.rule.as_str())
            .collect();
        assert_eq!(unfired, ["r2"]);
        // The same data is visible as labeled registry series.
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("counters")
                .unwrap()
                .get("repair.rule.applied{attr=\"state\",rule=\"r1\"}")
                .unwrap()
                .as_i64(),
            Some(2)
        );
    }

    #[test]
    fn out_of_range_rules_hit_the_catch_all() {
        let reg = MetricsRegistry::new();
        let obs = AttributionObserver::new(&reg, labels());
        obs.rule_applied(99, 0);
        let profile = obs.profile();
        let other = profile.rows.iter().find(|r| r.rule == "other").unwrap();
        assert_eq!(other.applied, 1);
    }

    #[test]
    fn profile_json_is_deterministic_and_free_of_wall_clock() {
        let run = || {
            let reg = MetricsRegistry::new();
            let obs = AttributionObserver::new(&reg, labels()).with_timing(true);
            obs.rule_applied(0, 1);
            obs.rule_rejected(1);
            // Latency values differ between "runs" but only the sample
            // count may appear in the JSON.
            obs.rule_latency(0, 1000 + reg.counter("seed").get());
            obs.profile().to_json().to_string()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.contains("_ns"), "profile JSON leaks nanoseconds: {a}");
        assert!(a.contains("\"latency_samples\": 1") || a.contains("\"latency_samples\":1"));
    }

    #[test]
    fn timing_opt_in_propagates_through_tee_and_refs() {
        let reg = MetricsRegistry::new();
        let plain = AttributionObserver::new(&reg, labels());
        assert!(!plain.wants_rule_timing());
        let timed = plain.clone().with_timing(true);
        assert!(timed.wants_rule_timing());
        let noop = NoopObserver;
        let tee = Tee(&noop, &timed);
        assert!(tee.wants_rule_timing());
        // Blanket &T forwarding keeps both the hooks and the timing flag.
        let via_ref: &dyn RepairObserver = &timed;
        assert!((&via_ref).wants_rule_timing());
        (&via_ref).rule_applied(0, 0);
        assert_eq!(
            timed
                .profile()
                .rows
                .iter()
                .find(|r| r.rule == "r0")
                .unwrap()
                .applied,
            1
        );
    }

    #[test]
    fn render_table_marks_unfired_rules() {
        let reg = MetricsRegistry::new();
        let obs = AttributionObserver::new(&reg, labels());
        obs.rule_applied(0, 1);
        let table = obs.profile().render_table();
        assert!(table.contains("rule"), "{table}");
        assert!(table.contains("never fired: r1, r2"), "{table}");
    }
}
