//! Windowed repair-quality monitoring: sketches, drift scores, alerts.
//!
//! [`QualityMonitor`] is a [`RepairObserver`] that watches the *data*
//! flowing through a repair driver, not the driver itself. Rows are
//! bucketed into tumbling windows of a fixed row count; each window keeps,
//! per attribute, a pre-repair and a post-repair [`CountMinSketch`], a
//! [`DistinctCounter`], and a [`Reservoir`] sample. Sealing a window
//! computes three signals per attribute:
//!
//! * **repair rate** — cells repaired / rows in the window;
//! * **new-value ratio** — fraction of rows whose pre-repair value was
//!   never seen in any *prior* window (count-min estimate of zero is an
//!   exact "never seen" proof; defined as 0 for the first window);
//! * **drift** — the normalized L1-style distance between this window's
//!   and the previous window's pre-repair frequency sketches, in
//!   `[0, 1]` (0 = identical distribution, 1 = disjoint).
//!
//! [`AlertRule`] thresholds are evaluated at seal time; a firing rule
//! becomes an [`AlertEvent`] on the window summary, a
//! `quality.alert{attr,signal}` labeled counter, and a `quality.alert`
//! log line. The latest sealed window's alerts stay *active* until the
//! next seal — `fixd --quality-gate` folds them into `GET /readyz`.
//!
//! Determinism: window indices are a logical clock (sealed-window count,
//! the same seq-only discipline as [`crate::trace::TraceClock::Logical`]),
//! every signal is serialized as integer counts and per-mille ratios, and
//! the sketches hash with fixed seeds — so two identical runs produce
//! byte-identical snapshots and summary tables.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::Mutex;

use crate::json::Json;
use crate::metrics::MetricsRegistry;
use crate::observer::{CellFix, RepairObserver};
use crate::sketch::{splitmix64, CountMinSketch, DistinctCounter, Reservoir, SlotBloom};

/// A per-window quality signal an [`AlertRule`] can threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Cells repaired / rows, per attribute.
    RepairRate,
    /// Rows whose value was never seen in prior windows / rows.
    NewValueRatio,
    /// Normalized L1 sketch distance to the previous window.
    Drift,
}

impl Signal {
    /// Stable name used in labels, flags, and snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            Signal::RepairRate => "repair_rate",
            Signal::NewValueRatio => "new_ratio",
            Signal::Drift => "drift",
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Signal {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "repair_rate" => Ok(Signal::RepairRate),
            "new_ratio" => Ok(Signal::NewValueRatio),
            "drift" => Ok(Signal::Drift),
            other => Err(format!(
                "unknown quality signal `{other}` (repair_rate|new_ratio|drift)"
            )),
        }
    }
}

/// A threshold over one [`Signal`], optionally scoped to one attribute.
///
/// Fires when the sealed window's signal value strictly exceeds
/// `threshold`. `attr: None` applies the rule to every attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Which signal to threshold.
    pub signal: Signal,
    /// Attribute name scope; `None` = any attribute.
    pub attr: Option<String>,
    /// Firing threshold (ratio in `[0, 1]`; strictly-greater comparison).
    pub threshold: f64,
}

impl AlertRule {
    /// Parse `signal>threshold` or `signal:attr>threshold`, e.g.
    /// `drift>0.5` or `repair_rate:city>0.25`.
    pub fn parse(spec: &str) -> Result<AlertRule, String> {
        let (lhs, rhs) = spec
            .split_once('>')
            .ok_or_else(|| format!("alert spec `{spec}` missing `>threshold`"))?;
        let threshold: f64 = rhs
            .trim()
            .parse()
            .map_err(|_| format!("alert spec `{spec}`: bad threshold `{rhs}`"))?;
        if !(0.0..=1.0).contains(&threshold) {
            return Err(format!("alert spec `{spec}`: threshold must be in [0, 1]"));
        }
        let lhs = lhs.trim();
        let (signal, attr) = match lhs.split_once(':') {
            Some((sig, attr)) => (sig, Some(attr.trim().to_string())),
            None => (lhs, None),
        };
        Ok(AlertRule {
            signal: signal.trim().parse()?,
            attr,
            threshold,
        })
    }
}

impl FromStr for AlertRule {
    type Err = String;

    fn from_str(spec: &str) -> Result<AlertRule, String> {
        AlertRule::parse(spec)
    }
}

impl fmt::Display for AlertRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.attr {
            Some(attr) => write!(f, "{}:{}>{}", self.signal, attr, self.threshold),
            None => write!(f, "{}>{}", self.signal, self.threshold),
        }
    }
}

/// Sizing and alerting configuration for a [`QualityMonitor`].
#[derive(Debug, Clone)]
pub struct QualityConfig {
    /// Rows per tumbling window (must be nonzero).
    pub window_rows: usize,
    /// Sealed window summaries to retain.
    pub history: usize,
    /// Count–min sketch width (cells per hash row).
    pub sketch_width: usize,
    /// Count–min sketch depth (hash rows). The default is 2: per-window
    /// attribute streams are small relative to the width, so collision
    /// inflation is already rare, and depth is the multiplier on the
    /// per-(row, attribute) hot path (the `bench quality` overhead
    /// budget).
    pub sketch_depth: usize,
    /// Register bits for the distinct counter (`2^bits` registers).
    pub distinct_bits: u32,
    /// Reservoir sample capacity per attribute.
    pub reservoir: usize,
    /// Alert thresholds evaluated at every window seal.
    pub alerts: Vec<AlertRule>,
}

impl QualityConfig {
    /// Default sizing with `window_rows` rows per window.
    pub fn with_window(window_rows: usize) -> Self {
        QualityConfig {
            window_rows,
            ..QualityConfig::default()
        }
    }
}

impl Default for QualityConfig {
    fn default() -> Self {
        QualityConfig {
            window_rows: 256,
            history: 8,
            sketch_width: 256,
            sketch_depth: 2,
            distinct_bits: 6,
            reservoir: 8,
            alerts: Vec::new(),
        }
    }
}

/// One alert firing: which rule tripped on which attribute of which
/// window, with the observed value (ratios are reported in per-mille so
/// snapshots stay integer-only and byte-deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertEvent {
    /// Logical index of the sealed window that fired.
    pub window: u64,
    /// Attribute name.
    pub attr: String,
    /// Signal that tripped.
    pub signal: Signal,
    /// Observed value, in per-mille (437 = 0.437).
    pub value_permille: i64,
    /// Rule threshold, in per-mille.
    pub threshold_permille: i64,
}

impl AlertEvent {
    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("attr", Json::from(self.attr.as_str())),
            ("signal", Json::from(self.signal.as_str())),
            ("threshold_permille", Json::Int(self.threshold_permille)),
            ("value_permille", Json::Int(self.value_permille)),
            ("window", Json::Int(self.window as i64)),
        ])
    }

    /// Inverse of [`AlertEvent::to_json`] — how `fixctl quality` reads a
    /// fetched snapshot back.
    pub fn from_json(json: &Json) -> Result<AlertEvent, String> {
        Ok(AlertEvent {
            window: get_u64(json, "window")?,
            attr: get_str(json, "attr")?.to_string(),
            signal: get_str(json, "signal")?.parse()?,
            value_permille: get_i64(json, "value_permille")?,
            threshold_permille: get_i64(json, "threshold_permille")?,
        })
    }
}

fn get_i64(json: &Json, key: &str) -> Result<i64, String> {
    json.get(key)
        .and_then(|j| j.as_i64())
        .ok_or_else(|| format!("snapshot object missing integer `{key}`"))
}

fn get_u64(json: &Json, key: &str) -> Result<u64, String> {
    Ok(get_i64(json, key)?.max(0) as u64)
}

fn get_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    json.get(key)
        .and_then(|j| j.as_str())
        .ok_or_else(|| format!("snapshot object missing string `{key}`"))
}

/// Per-attribute signals of one (sealed or in-progress) window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrSummary {
    /// Attribute name.
    pub attr: String,
    /// Cells repaired on this attribute.
    pub repaired: u64,
    /// Repair rate in per-mille of rows.
    pub repair_rate_permille: i64,
    /// Rows whose value was unseen in all prior windows.
    pub new_values: u64,
    /// New-value ratio in per-mille of rows (0 for the first window).
    pub new_ratio_permille: i64,
    /// Drift vs the previous window, in per-mille (0 for the first).
    pub drift_permille: i64,
    /// Approximate distinct pre-repair values in the window.
    pub distinct: u64,
    /// Sorted reservoir sample of pre-repair symbol ids.
    pub sample: Vec<u32>,
}

impl AttrSummary {
    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("attr", Json::from(self.attr.as_str())),
            ("distinct", Json::Int(self.distinct as i64)),
            ("drift_permille", Json::Int(self.drift_permille)),
            ("new_ratio_permille", Json::Int(self.new_ratio_permille)),
            ("new_values", Json::Int(self.new_values as i64)),
            ("repair_rate_permille", Json::Int(self.repair_rate_permille)),
            ("repaired", Json::Int(self.repaired as i64)),
            (
                "sample",
                Json::Arr(
                    self.sample
                        .iter()
                        .map(|&v| Json::Int(i64::from(v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Inverse of [`AttrSummary::to_json`].
    pub fn from_json(json: &Json) -> Result<AttrSummary, String> {
        let sample = match json.get("sample").and_then(|j| j.as_arr()) {
            Some(arr) => arr
                .iter()
                .map(|v| {
                    v.as_i64()
                        .map(|v| v.clamp(0, i64::from(u32::MAX)) as u32)
                        .ok_or_else(|| "snapshot sample must be integers".to_string())
                })
                .collect::<Result<Vec<u32>, String>>()?,
            None => Vec::new(),
        };
        Ok(AttrSummary {
            attr: get_str(json, "attr")?.to_string(),
            repaired: get_u64(json, "repaired")?,
            repair_rate_permille: get_i64(json, "repair_rate_permille")?,
            new_values: get_u64(json, "new_values")?,
            new_ratio_permille: get_i64(json, "new_ratio_permille")?,
            drift_permille: get_i64(json, "drift_permille")?,
            distinct: get_u64(json, "distinct")?,
            sample,
        })
    }
}

/// Signals and alerts of one window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Logical window index (0-based seal order — the monitor's clock).
    pub index: u64,
    /// Rows bucketed into the window.
    pub rows: u64,
    /// Per-attribute signals, in schema order.
    pub attrs: Vec<AttrSummary>,
    /// Alerts that fired when the window sealed.
    pub alerts: Vec<AlertEvent>,
}

impl WindowSummary {
    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "alerts",
                Json::Arr(self.alerts.iter().map(AlertEvent::to_json).collect()),
            ),
            (
                "attrs",
                Json::Arr(self.attrs.iter().map(AttrSummary::to_json).collect()),
            ),
            ("index", Json::Int(self.index as i64)),
            ("rows", Json::Int(self.rows as i64)),
        ])
    }

    /// Inverse of [`WindowSummary::to_json`].
    pub fn from_json(json: &Json) -> Result<WindowSummary, String> {
        let attrs = match json.get("attrs").and_then(|j| j.as_arr()) {
            Some(arr) => arr
                .iter()
                .map(AttrSummary::from_json)
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        let alerts = match json.get("alerts").and_then(|j| j.as_arr()) {
            Some(arr) => arr
                .iter()
                .map(AlertEvent::from_json)
                .collect::<Result<Vec<_>, String>>()?,
            None => Vec::new(),
        };
        Ok(WindowSummary {
            index: get_u64(json, "index")?,
            rows: get_u64(json, "rows")?,
            attrs,
            alerts,
        })
    }
}

/// Per-attribute sketch state of the in-progress window.
#[derive(Debug, Clone)]
struct AttrWindow {
    pre: CountMinSketch,
    /// Repairs only (`old → new` moves one unit of mass). The sketch is
    /// linear, so the post-repair distribution is exactly `pre +
    /// post_delta` — clean rows never touch this sketch, which keeps the
    /// per-row hot path to one count-min update.
    post_delta: CountMinSketch,
    distinct: DistinctCounter,
    /// Reservoir-sampled values. The selection decisions live in the
    /// shared [`Inner::sampler`] (every attribute sees exactly one value
    /// per row, so one decision stream serves all attributes); this is
    /// just the storage the shared slot writes into.
    sample: Vec<u32>,
    repaired: u64,
    new_values: u64,
}

impl AttrWindow {
    fn new(cfg: &QualityConfig) -> Self {
        AttrWindow {
            pre: CountMinSketch::new(cfg.sketch_width, cfg.sketch_depth),
            post_delta: CountMinSketch::new(cfg.sketch_width, cfg.sketch_depth),
            distinct: DistinctCounter::new(cfg.distinct_bits),
            sample: Vec::with_capacity(cfg.reservoir),
            repaired: 0,
            new_values: 0,
        }
    }

    /// Post-repair point estimate: the pre sketch plus the repair delta.
    #[cfg(test)]
    fn post_estimate(&self, key: u32) -> i64 {
        self.pre.merged_estimate(&self.post_delta, key)
    }
}

/// Deterministic 64-bit hash of a whole row of interned values (FNV-1a
/// over the words, finished with [`splitmix64`]): one multiply per
/// attribute, an order of magnitude cheaper than per-attribute sketch
/// updates. Collisions only cost a full-row comparison, never
/// correctness.
fn row_hash(values: &[u32]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &v in values {
        acc = (acc ^ u64::from(v)).wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(acc)
}

/// Bounded map from distinct row patterns to occurrence counts.
///
/// Within one window every quality signal is either *linear* in
/// occurrence counts (the count–min updates), *idempotent* (distinct
/// registers, and the new-value probe against the `seen` oracle, which
/// is frozen until seal), or *value-independent* (the shared reservoir
/// decision stream) — so identical rows can be tallied here and applied
/// to the sketches once, with their multiplicity, producing
/// byte-identical state to row-at-a-time application. Streams repeat
/// rows constantly; this turns the per-row hot path into one cheap hash
/// and table probe.
#[derive(Debug)]
struct RowBatch {
    /// Open-addressed slot table: 1-based entry index, 0 = empty.
    /// Power-of-two size ≥ 2 × capacity, so probes stay short.
    index: Vec<u32>,
    /// Distinct rows in first-seen order: `(row_hash, count)`.
    entries: Vec<(u64, u32)>,
    /// Flat arena of entry values, `attrs` per entry.
    arena: Vec<u32>,
    attrs: usize,
    cap: usize,
}

impl RowBatch {
    /// Cap on distinct rows buffered before a mid-window application:
    /// bounds both memory and the latency spike of draining the batch.
    const MAX_DISTINCT: usize = 4096;

    fn new(attrs: usize, window_rows: usize) -> Self {
        let cap = window_rows.clamp(1, Self::MAX_DISTINCT);
        RowBatch {
            index: vec![0; (cap * 2).next_power_of_two()],
            entries: Vec::with_capacity(cap),
            arena: Vec::with_capacity(cap * attrs),
            attrs,
            cap,
        }
    }

    fn is_full(&self) -> bool {
        self.entries.len() >= self.cap
    }

    fn clear(&mut self) {
        self.index.fill(0);
        self.entries.clear();
        self.arena.clear();
    }

    /// Tally one occurrence of `values`. Returns `false` when the row
    /// cannot be batched (arity mismatch with the schema) and must be
    /// applied directly. The caller drains the batch before this can be
    /// called full.
    #[inline]
    fn add(&mut self, values: &[u32]) -> bool {
        if values.len() != self.attrs {
            return false;
        }
        let h = row_hash(values);
        let mask = self.index.len() - 1;
        let mut slot = (h as usize) & mask;
        loop {
            match self.index[slot] {
                0 => {
                    self.index[slot] = self.entries.len() as u32 + 1;
                    self.entries.push((h, 1));
                    self.arena.extend_from_slice(values);
                    return true;
                }
                id => {
                    let i = (id - 1) as usize;
                    if self.entries[i].0 == h
                        && self.arena[i * self.attrs..(i + 1) * self.attrs] == *values
                    {
                        self.entries[i].1 += 1;
                        return true;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }
}

/// Apply `count` occurrences of one row's pre-repair values to the
/// per-attribute window sketches.
fn apply_row(
    attrs: &mut [AttrWindow],
    seen: &[SlotBloom],
    values: &[u32],
    count: u32,
    sealed_any: bool,
) {
    for ((&v, aw), seen) in values.iter().zip(attrs.iter_mut()).zip(seen.iter()) {
        // One mix per (attribute, value), shared by the count-min
        // update, the bloom membership probe, and the distinct
        // counter. The bloom oracle is a bit per count-min slot, so
        // the whole "seen before" working set stays cache-resident.
        let h = CountMinSketch::hash_key(v);
        if aw.pre.add_hashed_with_probe(seen, h, i64::from(count)) && sealed_any {
            aw.new_values += u64::from(count);
        }
        aw.distinct.insert_hashed(h);
    }
}

/// Drain the row batch into the sketches and reset it.
fn apply_batch(
    batch: &mut RowBatch,
    attrs: &mut [AttrWindow],
    seen: &[SlotBloom],
    sealed_any: bool,
) {
    for (i, &(_, count)) in batch.entries.iter().enumerate() {
        let row = &batch.arena[i * batch.attrs..(i + 1) * batch.attrs];
        apply_row(attrs, seen, row, count, sealed_any);
    }
    batch.clear();
}

#[derive(Debug)]
struct Inner {
    /// Logical clock: number of windows sealed so far; also the index the
    /// in-progress window will get.
    clock: u64,
    rows: u64,
    attrs: Vec<AttrWindow>,
    /// Pre-repair sketches of the previous sealed window (drift baseline).
    prev_pre: Option<Vec<CountMinSketch>>,
    prev_rows: u64,
    /// Cumulative membership filters over all *sealed* windows (the
    /// "seen before" oracle for the new-value signal). A bloom bit per
    /// count-min slot answers the only question the hot path asks —
    /// "definitely never seen?" — while staying cache-resident.
    seen: Vec<SlotBloom>,
    /// Shared reservoir decision stream: one [`Reservoir::step`] per row
    /// drives every attribute's sample slot (byte-identical to per-attr
    /// reservoirs, 17× cheaper on a 17-attribute schema).
    sampler: Reservoir,
    /// Distinct-row tally for the in-progress window; drained into the
    /// sketches when full, at seal, and before any live summary.
    batch: RowBatch,
    history: VecDeque<WindowSummary>,
    active: Vec<AlertEvent>,
}

/// The windowed repair-quality monitor. See the module docs for the
/// signal definitions and determinism contract.
///
/// Implements [`RepairObserver`]: feed it by teeing it into a repair
/// driver's observer chain (it answers [`RepairObserver::wants_rows`]
/// with `true` so drivers materialize pre-repair rows), or call
/// [`RepairObserver::row_observed`] / [`RepairObserver::cell_repaired`]
/// directly as `fixd` does.
#[derive(Debug)]
pub struct QualityMonitor {
    cfg: QualityConfig,
    attr_names: Vec<String>,
    registry: Option<RegistryHandles>,
    inner: Mutex<Inner>,
}

/// Pre-resolved metric handles, looked up once in
/// [`QualityMonitor::with_registry`] so sealing a window never pays for
/// label formatting or registry lookups (small windows seal often).
#[derive(Debug)]
struct RegistryHandles {
    registry: MetricsRegistry,
    windows: crate::metrics::Counter,
    drift: Vec<crate::metrics::Gauge>,
}

impl QualityMonitor {
    /// Create a monitor for a schema with the given attribute names.
    pub fn new(cfg: QualityConfig, attr_names: Vec<String>) -> Self {
        assert!(cfg.window_rows > 0, "quality window must be nonzero");
        let attrs = attr_names.iter().map(|_| AttrWindow::new(&cfg)).collect();
        let seen = attr_names
            .iter()
            .map(|_| SlotBloom::new(cfg.sketch_width, cfg.sketch_depth))
            .collect();
        QualityMonitor {
            inner: Mutex::new(Inner {
                clock: 0,
                rows: 0,
                attrs,
                prev_pre: None,
                prev_rows: 0,
                seen,
                sampler: Reservoir::new(cfg.reservoir),
                batch: RowBatch::new(attr_names.len(), cfg.window_rows),
                history: VecDeque::new(),
                active: Vec::new(),
            }),
            cfg,
            attr_names,
            registry: None,
        }
    }

    /// Also write `quality.*` counters and gauges into `registry` (alert
    /// counters, per-attribute drift gauges, sealed-window count).
    pub fn with_registry(mut self, registry: &MetricsRegistry) -> Self {
        self.registry = Some(RegistryHandles {
            registry: registry.clone(),
            windows: registry.counter("quality.windows"),
            drift: self
                .attr_names
                .iter()
                .map(|attr| registry.gauge_with("quality.drift", &[("attr", attr)]))
                .collect(),
        });
        self
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &QualityConfig {
        &self.cfg
    }

    /// Number of windows sealed so far (the logical clock).
    pub fn windows_sealed(&self) -> u64 {
        self.inner.lock().unwrap().clock
    }

    /// Alerts of the most recently sealed window — the "active" set that
    /// `--quality-gate` folds into readiness.
    pub fn active_alerts(&self) -> Vec<AlertEvent> {
        self.inner.lock().unwrap().active.clone()
    }

    /// Sealed window summaries, oldest first (bounded by
    /// [`QualityConfig::history`]).
    pub fn summaries(&self) -> Vec<WindowSummary> {
        self.inner.lock().unwrap().history.iter().cloned().collect()
    }

    /// Seal the in-progress window even if it is short. A no-op when the
    /// window is empty, so idle flushes never manufacture windows.
    pub fn flush(&self) {
        let mut inner = self.inner.lock().unwrap();
        if inner.rows > 0 {
            self.seal(&mut inner);
        }
    }

    /// Full monitor state as deterministic JSON: configuration, logical
    /// clock, the in-progress window, sealed history, and active alerts.
    pub fn snapshot(&self) -> Json {
        let mut inner = self.inner.lock().unwrap();
        {
            let Inner {
                clock,
                attrs,
                seen,
                batch,
                ..
            } = &mut *inner;
            apply_batch(batch, attrs, seen, *clock > 0);
        }
        let current = self.summarize(&inner);
        Json::obj([
            (
                "alerts",
                Json::Arr(inner.active.iter().map(AlertEvent::to_json).collect()),
            ),
            ("clock", Json::Int(inner.clock as i64)),
            ("current", current.to_json()),
            ("history_cap", Json::Int(self.cfg.history as i64)),
            ("window_rows", Json::Int(self.cfg.window_rows as i64)),
            (
                "windows",
                Json::Arr(inner.history.iter().map(WindowSummary::to_json).collect()),
            ),
        ])
    }

    /// Fixed-width table of the sealed windows, one line per
    /// (window, attribute), plus a trailing alert line per firing —
    /// deterministic, for CI `cmp` gates and terminal eyes.
    pub fn render_table(&self) -> String {
        let inner = self.inner.lock().unwrap();
        render_windows(inner.history.iter())
    }

    /// Summarize the in-progress window without sealing it (drift is
    /// computed live against the previous window's sketches).
    fn summarize(&self, inner: &Inner) -> WindowSummary {
        let rows = inner.rows;
        let attrs = self
            .attr_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let aw = &inner.attrs[i];
                let drift = match &inner.prev_pre {
                    Some(prev) if rows + inner.prev_rows > 0 => {
                        aw.pre.l1_distance(&prev[i]) as f64 / (rows + inner.prev_rows) as f64
                    }
                    _ => 0.0,
                };
                let new_ratio = if inner.clock == 0 || rows == 0 {
                    0.0
                } else {
                    aw.new_values as f64 / rows as f64
                };
                let repair_rate = if rows == 0 {
                    0.0
                } else {
                    aw.repaired as f64 / rows as f64
                };
                AttrSummary {
                    attr: name.clone(),
                    repaired: aw.repaired,
                    repair_rate_permille: permille(repair_rate),
                    new_values: aw.new_values,
                    new_ratio_permille: permille(new_ratio),
                    drift_permille: permille(drift),
                    distinct: if rows == 0 {
                        0
                    } else {
                        aw.distinct.estimate_u64()
                    },
                    sample: {
                        let mut sample = aw.sample.clone();
                        sample.sort_unstable();
                        sample
                    },
                }
            })
            .collect();
        WindowSummary {
            index: inner.clock,
            rows,
            attrs,
            alerts: Vec::new(),
        }
    }

    /// Seal the in-progress window: compute signals, evaluate alerts,
    /// emit metrics and log lines, rotate sketch state.
    fn seal(&self, inner: &mut Inner) {
        {
            let Inner {
                clock,
                attrs,
                seen,
                batch,
                ..
            } = &mut *inner;
            apply_batch(batch, attrs, seen, *clock > 0);
        }
        let mut summary = self.summarize(inner);
        for rule in &self.cfg.alerts {
            for attr in &summary.attrs {
                if rule.attr.as_deref().is_some_and(|a| a != attr.attr) {
                    continue;
                }
                let value_permille = match rule.signal {
                    Signal::RepairRate => attr.repair_rate_permille,
                    Signal::NewValueRatio => attr.new_ratio_permille,
                    Signal::Drift => attr.drift_permille,
                };
                let threshold_permille = permille(rule.threshold);
                if value_permille > threshold_permille {
                    summary.alerts.push(AlertEvent {
                        window: summary.index,
                        attr: attr.attr.clone(),
                        signal: rule.signal,
                        value_permille,
                        threshold_permille,
                    });
                }
            }
        }

        if let Some(handles) = &self.registry {
            handles.windows.inc();
            for (attr, gauge) in summary.attrs.iter().zip(&handles.drift) {
                gauge.set(attr.drift_permille);
            }
            for alert in &summary.alerts {
                handles
                    .registry
                    .counter_with(
                        "quality.alert",
                        &[("attr", &alert.attr), ("signal", alert.signal.as_str())],
                    )
                    .inc();
            }
        }
        for alert in &summary.alerts {
            crate::info!(
                "quality.alert",
                window = alert.window,
                attr = alert.attr,
                signal = alert.signal,
                value_permille = alert.value_permille,
                threshold_permille = alert.threshold_permille
            );
        }

        inner.active = summary.alerts.clone();
        inner.history.push_back(summary);
        while inner.history.len() > self.cfg.history {
            inner.history.pop_front();
        }

        // Rotate window buffers in place: the old drift baseline becomes
        // the (cleared) next current window and the just-sealed pre
        // sketch becomes the new baseline. No allocation per seal, which
        // matters at small windows (a 20k-row stream with 256-row
        // windows seals 78 times).
        let Inner {
            attrs,
            seen,
            prev_pre,
            sampler,
            ..
        } = &mut *inner;
        sampler.clear();
        let prev = prev_pre.get_or_insert_with(|| {
            attrs
                .iter()
                .map(|_| CountMinSketch::new(self.cfg.sketch_width, self.cfg.sketch_depth))
                .collect()
        });
        for ((aw, seen), prev) in attrs.iter_mut().zip(seen.iter_mut()).zip(prev.iter_mut()) {
            seen.absorb(&aw.pre);
            std::mem::swap(&mut aw.pre, prev);
            aw.pre.clear();
            aw.post_delta.clear();
            aw.distinct.clear();
            aw.sample.clear();
            aw.repaired = 0;
            aw.new_values = 0;
        }
        inner.prev_rows = inner.rows;
        inner.rows = 0;
        inner.clock += 1;
    }
}

impl RepairObserver for QualityMonitor {
    fn row_observed(&self, values: &[u32]) {
        let mut inner = self.inner.lock().unwrap();
        // Seal lazily on the *next* row, so the last row's
        // `cell_repaired` events land in the window that observed it.
        if inner.rows >= self.cfg.window_rows as u64 {
            self.seal(&mut inner);
        }
        let Inner {
            clock,
            rows,
            attrs,
            seen,
            sampler,
            batch,
            ..
        } = &mut *inner;
        // Reservoir decisions depend on the row position, so sampling
        // happens now; the sketch updates are linear/idempotent, so they
        // go through the distinct-row batch and are applied with
        // multiplicities later.
        if let Some(slot) = sampler.step() {
            for (&v, aw) in values.iter().zip(attrs.iter_mut()) {
                if slot < aw.sample.len() {
                    aw.sample[slot] = v;
                } else {
                    aw.sample.push(v);
                }
            }
        }
        *rows += 1;
        if batch.is_full() {
            apply_batch(batch, attrs, seen, *clock > 0);
        }
        if !batch.add(values) {
            apply_row(attrs, seen, values, 1, *clock > 0);
        }
    }

    fn cell_repaired(&self, fix: CellFix) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(aw) = inner.attrs.get_mut(fix.attr) {
            aw.repaired += 1;
            aw.post_delta.add(fix.old, -1);
            aw.post_delta.add(fix.new, 1);
        }
    }

    fn wants_rows(&self) -> bool {
        true
    }
}

/// Scale a ratio to integer per-mille (the only form ratios take in JSON
/// and tables, keeping all output float-free and byte-deterministic).
fn permille(ratio: f64) -> i64 {
    (ratio * 1000.0).round() as i64
}

/// Render a per-mille value as `0.437` (three fixed decimals).
fn fmt_permille(p: i64) -> String {
    format!("{}.{:03}", p / 1000, p % 1000)
}

/// The shared window table: one line per (window, attribute) plus one
/// `alert:` line per firing. Used by [`QualityMonitor::render_table`]
/// on live state and [`render_snapshot`] on fetched JSON, so both render
/// byte-identically.
fn render_windows<'a>(windows: impl Iterator<Item = &'a WindowSummary>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>6}  {:>6}  {:<12}  {:>8}  {:>6}  {:>6}  {:>6}  {:>8}\n",
        "window", "rows", "attr", "repaired", "rate", "new", "drift", "distinct"
    ));
    for w in windows {
        for a in &w.attrs {
            out.push_str(&format!(
                "{:>6}  {:>6}  {:<12}  {:>8}  {:>6}  {:>6}  {:>6}  {:>8}\n",
                w.index,
                w.rows,
                a.attr,
                a.repaired,
                fmt_permille(a.repair_rate_permille),
                fmt_permille(a.new_ratio_permille),
                fmt_permille(a.drift_permille),
                a.distinct,
            ));
        }
        for alert in &w.alerts {
            out.push_str(&format!(
                "alert: window {} attr {} signal {} value {} > threshold {}\n",
                alert.window,
                alert.attr,
                alert.signal,
                fmt_permille(alert.value_permille),
                fmt_permille(alert.threshold_permille),
            ));
        }
    }
    out
}

/// Render a fetched [`QualityMonitor::snapshot`] (or `fixd`'s
/// `GET /quality` body) as the standard window table, preceded by a
/// one-line header and followed by the active alert set. `last` limits
/// the table to the newest `N` sealed windows.
pub fn render_snapshot(snapshot: &Json, last: Option<usize>) -> Result<String, String> {
    if snapshot.get("enabled").and_then(|j| j.as_bool()) == Some(false) {
        return Ok("quality: monitoring disabled\n".to_string());
    }
    let mut windows = match snapshot.get("windows").and_then(|j| j.as_arr()) {
        Some(arr) => arr
            .iter()
            .map(WindowSummary::from_json)
            .collect::<Result<Vec<_>, String>>()?,
        None => return Err("snapshot missing `windows` array".to_string()),
    };
    if let Some(last) = last {
        if windows.len() > last {
            windows.drain(..windows.len() - last);
        }
    }
    let active = match snapshot.get("alerts").and_then(|j| j.as_arr()) {
        Some(arr) => arr
            .iter()
            .map(AlertEvent::from_json)
            .collect::<Result<Vec<_>, String>>()?,
        None => Vec::new(),
    };
    let mut out = format!(
        "quality: clock {} window_rows {} active_alerts {}\n",
        snapshot.get("clock").and_then(|j| j.as_i64()).unwrap_or(0),
        snapshot
            .get("window_rows")
            .and_then(|j| j.as_i64())
            .unwrap_or(0),
        active.len(),
    );
    out.push_str(&render_windows(windows.iter()));
    for alert in &active {
        out.push_str(&format!(
            "active alert: attr {} signal {} value {} > threshold {}\n",
            alert.attr,
            alert.signal,
            fmt_permille(alert.value_permille),
            fmt_permille(alert.threshold_permille),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(monitor: &QualityMonitor, rows: &[&[u32]]) {
        for row in rows {
            monitor.row_observed(row);
        }
    }

    fn fix(attr: usize, old: u32, new: u32) -> CellFix {
        CellFix {
            row: 0,
            ordinal: 0,
            rule: 0,
            attr,
            old,
            new,
            round: 1,
        }
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("a{i}")).collect()
    }

    #[test]
    fn alert_rule_parsing() {
        let r = AlertRule::parse("drift>0.5").unwrap();
        assert_eq!(r.signal, Signal::Drift);
        assert_eq!(r.attr, None);
        assert_eq!(r.threshold, 0.5);
        let r = AlertRule::parse("repair_rate:city>0.25").unwrap();
        assert_eq!(r.signal, Signal::RepairRate);
        assert_eq!(r.attr.as_deref(), Some("city"));
        assert!(AlertRule::parse("bogus>0.5").is_err());
        assert!(AlertRule::parse("drift=0.5").is_err());
        assert!(AlertRule::parse("drift>1.5").is_err());
        assert_eq!(r.to_string(), "repair_rate:city>0.25");
    }

    #[test]
    fn windows_seal_on_row_count_with_logical_clock() {
        let m = QualityMonitor::new(QualityConfig::with_window(2), names(1));
        feed(&m, &[&[1], &[1], &[1], &[1], &[1]]);
        // Lazy sealing: rows 0-1 sealed when row 2 arrived, rows 2-3 when
        // row 4 arrived; row 4 still in progress.
        assert_eq!(m.windows_sealed(), 2);
        let windows = m.summaries();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].index, 0);
        assert_eq!(windows[1].index, 1);
        assert_eq!(windows[0].rows, 2);
        m.flush();
        assert_eq!(m.windows_sealed(), 3);
        assert_eq!(m.summaries()[2].rows, 1);
        // Flushing an empty window is a no-op.
        m.flush();
        assert_eq!(m.windows_sealed(), 3);
    }

    #[test]
    fn repair_rate_counts_cells_per_attribute() {
        let m = QualityMonitor::new(QualityConfig::with_window(4), names(2));
        for _ in 0..4 {
            m.row_observed(&[1, 2]);
        }
        m.cell_repaired(fix(1, 2, 9));
        m.cell_repaired(fix(1, 2, 9));
        m.flush();
        let w = &m.summaries()[0];
        assert_eq!(w.attrs[0].repaired, 0);
        assert_eq!(w.attrs[1].repaired, 2);
        assert_eq!(w.attrs[1].repair_rate_permille, 500);
    }

    #[test]
    fn drift_zero_on_identical_windows_and_high_on_disjoint() {
        let m = QualityMonitor::new(QualityConfig::with_window(4), names(1));
        for _ in 0..2 {
            feed(&m, &[&[1], &[2], &[3], &[4]]);
        }
        // Third window: disjoint values.
        feed(&m, &[&[101], &[102], &[103], &[104]]);
        m.flush();
        let w = m.summaries();
        assert_eq!(
            w[0].attrs[0].drift_permille, 0,
            "first window has no baseline"
        );
        assert_eq!(w[1].attrs[0].drift_permille, 0, "identical windows");
        assert!(
            w[2].attrs[0].drift_permille > 800,
            "disjoint windows drift ~1.0, got {}",
            w[2].attrs[0].drift_permille
        );
    }

    #[test]
    fn new_value_ratio_is_zero_for_first_window_then_tracks_novelty() {
        let m = QualityMonitor::new(QualityConfig::with_window(2), names(1));
        feed(&m, &[&[1], &[2]]); // window 0: everything novel, reported 0
        feed(&m, &[&[1], &[7]]); // window 1: one seen, one new
        m.flush();
        let w = m.summaries();
        assert_eq!(w[0].attrs[0].new_ratio_permille, 0);
        assert_eq!(w[0].attrs[0].new_values, 0);
        assert_eq!(w[1].attrs[0].new_values, 1);
        assert_eq!(w[1].attrs[0].new_ratio_permille, 500);
    }

    #[test]
    fn alerts_fire_emit_metrics_and_stay_active_until_next_seal() {
        let registry = MetricsRegistry::new();
        let cfg = QualityConfig {
            window_rows: 2,
            alerts: vec![AlertRule::parse("drift>0.5").unwrap()],
            ..QualityConfig::default()
        };
        let m = QualityMonitor::new(cfg, names(1)).with_registry(&registry);
        feed(&m, &[&[1], &[1]]);
        feed(&m, &[&[9], &[9]]); // disjoint → drift 1.0 at seal
        m.flush();
        let active = m.active_alerts();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].signal, Signal::Drift);
        assert_eq!(active[0].attr, "a0");
        assert_eq!(active[0].window, 1);
        let snap = registry.snapshot();
        let counters = snap.get("counters").unwrap();
        assert_eq!(
            counters
                .get("quality.alert{attr=\"a0\",signal=\"drift\"}")
                .unwrap()
                .as_i64(),
            Some(1)
        );
        assert_eq!(counters.get("quality.windows").unwrap().as_i64(), Some(2));
        let drift = snap
            .get("gauges")
            .unwrap()
            .get("quality.drift{attr=\"a0\"}")
            .unwrap()
            .as_i64()
            .unwrap();
        assert_eq!(drift, 1000);
        // A calm window clears the active set.
        feed(&m, &[&[9], &[9]]);
        m.flush();
        assert!(m.active_alerts().is_empty());
    }

    #[test]
    fn attr_scoped_alert_only_fires_on_that_attribute() {
        let cfg = QualityConfig {
            window_rows: 2,
            alerts: vec![AlertRule::parse("repair_rate:a1>0.4").unwrap()],
            ..QualityConfig::default()
        };
        let m = QualityMonitor::new(cfg, names(2));
        feed(&m, &[&[1, 1], &[1, 1]]);
        m.cell_repaired(fix(0, 1, 2)); // attr a0 repaired heavily
        m.cell_repaired(fix(0, 1, 2));
        m.flush();
        assert!(m.active_alerts().is_empty(), "rule scoped to a1");
        feed(&m, &[&[1, 1], &[1, 1]]);
        m.cell_repaired(fix(1, 1, 2));
        m.cell_repaired(fix(1, 1, 2));
        m.flush();
        let active = m.active_alerts();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].attr, "a1");
    }

    #[test]
    fn snapshot_and_table_are_byte_deterministic() {
        let run = || {
            let cfg = QualityConfig {
                window_rows: 3,
                alerts: vec![AlertRule::parse("new_ratio>0.3").unwrap()],
                ..QualityConfig::default()
            };
            let m = QualityMonitor::new(cfg, vec!["zip".into(), "city".into()]);
            for i in 0..10u32 {
                m.row_observed(&[i % 4, i % 3]);
                if i % 5 == 0 {
                    m.cell_repaired(fix(1, i % 3, 99));
                }
            }
            m.flush();
            (m.snapshot().to_string_pretty(), m.render_table())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn render_snapshot_round_trips_the_window_table() {
        let cfg = QualityConfig {
            window_rows: 2,
            alerts: vec![AlertRule::parse("repair_rate>0.4").unwrap()],
            ..QualityConfig::default()
        };
        let m = QualityMonitor::new(cfg, names(2));
        for i in 0..6u32 {
            m.row_observed(&[i % 2, i]);
            m.cell_repaired(fix(0, i % 2, 77));
        }
        m.flush();
        let snapshot = m.snapshot();
        // A fetched snapshot renders the same table the live monitor
        // prints, prefixed by the one-line header and active alerts.
        let rendered = render_snapshot(&snapshot, None).unwrap();
        assert!(rendered.starts_with("quality: clock 3 window_rows 2"));
        assert!(rendered.contains(&m.render_table()));
        assert!(rendered.contains("active alert: attr a0 signal repair_rate"));
        // `last` keeps only the newest windows.
        let tail = render_snapshot(&snapshot, Some(1)).unwrap();
        assert!(!tail.contains("\n     0  "), "window 0 must be dropped");
        assert!(tail.contains("\n     2  "), "newest window kept: {tail}");
        // The disabled marker from fixd renders as a plain notice.
        let off = Json::obj([("enabled", Json::from(false))]);
        assert_eq!(
            render_snapshot(&off, None).unwrap(),
            "quality: monitoring disabled\n"
        );
    }

    #[test]
    fn history_is_bounded() {
        let cfg = QualityConfig {
            window_rows: 1,
            history: 3,
            ..QualityConfig::default()
        };
        let m = QualityMonitor::new(cfg, names(1));
        for i in 0..10u32 {
            m.row_observed(&[i]);
        }
        m.flush();
        let w = m.summaries();
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].index, 7, "oldest retained window");
        assert_eq!(w[2].index, 9);
    }

    #[test]
    fn post_sketch_tracks_repairs() {
        // Not directly exposed in summaries, but the delta discipline
        // must keep the post sketch linear: repairing old→new moves one
        // unit of mass.
        let m = QualityMonitor::new(QualityConfig::with_window(4), names(1));
        feed(&m, &[&[5], &[5]]);
        m.cell_repaired(fix(0, 5, 6));
        // Drain the distinct-row batch so the live pre sketch is current.
        m.snapshot();
        let inner = m.inner.lock().unwrap();
        assert_eq!(inner.attrs[0].pre.estimate(5), 2);
        assert_eq!(inner.attrs[0].post_estimate(5), 1);
        assert_eq!(inner.attrs[0].post_estimate(6), 1);
    }
}
