//! Lock-free metrics: counters, gauges, log-bucketed histograms, and a
//! registry that snapshots them all as deterministic JSON.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-wrapped
//! atomics: registration takes a mutex once, the hot path is a relaxed
//! atomic op. The registry snapshot is a [`Json`] object with a stable
//! schema (see [`MetricsRegistry::snapshot`]); object keys are sorted, so
//! two runs with the same behavior serialize byte-identically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raise the value to at least `v` (lock-free max).
    pub fn max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per power of two. Quantiles report the lower bound of the
/// matched bucket, so with 8 sub-buckets the worst-case relative error is
/// `(width - 1) / (lower + width - 1) ≤ 1/9 ≈ 11%` for values ≥ 8 (values
/// below 8 and exact bucket bounds are reported exactly).
const SUBBUCKETS_BITS: u32 = 3;
const SUBBUCKETS: u32 = 1 << SUBBUCKETS_BITS;
/// Buckets 0..8 hold the values 0..8 exactly; each higher power of two
/// splits into 8 geometric sub-buckets, up to the top of the `u64` range.
const NUM_BUCKETS: usize = 64 * SUBBUCKETS as usize - 2 * SUBBUCKETS as usize;

/// A log-bucketed histogram of `u64` samples (typically nanoseconds).
///
/// Values map to one of 513 buckets: bucket 0 holds zeros; above that each
/// power of two splits into 8 geometric sub-buckets. Recording is a single
/// relaxed `fetch_add`; quantiles walk the bucket array and report the
/// **lower bound** of the bucket containing the requested rank, so exact
/// powers of two (and any value below 2³ = 8) are reported exactly.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    counts: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: Arc::new(HistogramInner {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

/// Bucket index for a value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBBUCKETS as u64 {
        // Values below 2^3: one bucket each, exact (bucket 0 holds zeros).
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // position of the leading one
    let sub = ((v >> (msb - SUBBUCKETS_BITS)) & (SUBBUCKETS as u64 - 1)) as u32;
    (msb * SUBBUCKETS + sub - 2 * SUBBUCKETS) as usize
}

/// Lower bound (inclusive) of a bucket — the value quantiles report.
fn bucket_lower_bound(i: usize) -> u64 {
    if i < SUBBUCKETS as usize {
        return i as u64;
    }
    let idx = i as u32 + 2 * SUBBUCKETS;
    let msb = idx / SUBBUCKETS;
    let sub = idx % SUBBUCKETS;
    (1u64 << msb) | ((sub as u64) << (msb - SUBBUCKETS_BITS))
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.buckets;
        inner.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record the same sample `n` times in O(1): the bucket count and sum
    /// are bulk-added and `max` is one `fetch_max`, so aggregating callers
    /// (batched observer hooks) pay three atomics instead of `3n`.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let inner = &*self.buckets;
        inner.counts[bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        inner.sum.fetch_add(v.wrapping_mul(n), Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.buckets.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.buckets.max.load(Ordering::Relaxed)
    }

    /// The quantile `q` in `[0, 1]`: lower bound of the bucket holding the
    /// sample of rank `ceil(q·count)`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower_bound(i);
            }
        }
        bucket_lower_bound(NUM_BUCKETS - 1)
    }

    /// Snapshot as JSON: `{count, sum, max, p50, p95, p99}`.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", Json::from(self.count())),
            ("sum", Json::from(self.sum())),
            ("max", Json::from(self.max())),
            ("p50", Json::from(self.quantile(0.50))),
            ("p95", Json::from(self.quantile(0.95))),
            ("p99", Json::from(self.quantile(0.99))),
        ])
    }
}

/// A named collection of metrics, snapshotted as one JSON object.
///
/// Cloning shares the underlying store, so one registry can be handed to
/// workers, observers, and the CLI at once.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Store>>,
}

#[derive(Debug, Default)]
struct Store {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// Encode a metric name plus a label set as one canonical series key:
/// `name{k1="v1",k2="v2"}`, labels sorted by key (ties by value), values
/// escaped (`\` and `"`). An empty label set encodes as the bare name, so
/// unlabeled and labeled metrics live in one deterministic namespace.
///
/// The encoding is what [`MetricsRegistry::snapshot`] emits as object keys
/// and what [`crate::expose::split_series`] parses back for Prometheus
/// exposition.
pub fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut key = String::with_capacity(name.len() + 16 * sorted.len());
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        key.push_str(k);
        key.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => key.push_str("\\\\"),
                '"' => key.push_str("\\\""),
                '\n' => key.push_str("\\n"),
                c => key.push(c),
            }
        }
        key.push('"');
    }
    key.push('}');
    key
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name`. The handle is lock-free.
    pub fn counter(&self, name: &str) -> Counter {
        let mut store = self.inner.lock().unwrap();
        store.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get-or-create the counter `name` with a label set — one independent
    /// series per distinct label set, e.g.
    /// `counter_with("repair.rule.applied", &[("rule", "r3"), ("attr", "city")])`.
    /// Registration takes the registry lock once; the returned handle is
    /// the same lock-free atomic as an unlabeled counter, so hot paths
    /// should resolve their handles up front.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        self.counter(&series_key(name, labels))
    }

    /// Get-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut store = self.inner.lock().unwrap();
        store.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get-or-create the gauge `name` with a label set (see
    /// [`MetricsRegistry::counter_with`]).
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        self.gauge(&series_key(name, labels))
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut store = self.inner.lock().unwrap();
        store
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get-or-create the histogram `name` with a label set (see
    /// [`MetricsRegistry::counter_with`]).
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        self.histogram(&series_key(name, labels))
    }

    /// Start a [`SpanTimer`] that records its elapsed nanoseconds into the
    /// histogram `<name>_ns` when dropped.
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer {
            histogram: self.histogram(&format!("{name}_ns")),
            start: Instant::now(),
        }
    }

    /// Time `f`, recording its wall-clock under `<name>_ns`.
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Export everything as JSON with the stable schema
    ///
    /// ```json
    /// {
    ///   "counters":   {"<name>": <u64>, ...},
    ///   "gauges":     {"<name>": <i64>, ...},
    ///   "histograms": {"<name>": {"count":., "sum":., "max":., "p50":., "p95":., "p99":.}, ...}
    /// }
    /// ```
    ///
    /// Keys are sorted; identical metric states serialize byte-identically.
    pub fn snapshot(&self) -> Json {
        let store = self.inner.lock().unwrap();
        let counters = store
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::from(v.get())))
            .collect();
        let gauges = store
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(v.get())))
            .collect();
        let histograms = store
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.to_json()))
            .collect();
        Json::Obj(BTreeMap::from([
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ]))
    }
}

/// RAII scoped timer from [`MetricsRegistry::span`]: records the elapsed
/// nanoseconds into its histogram on drop.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Histogram,
    start: Instant,
}

impl SpanTimer {
    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.histogram.record(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("repairs");
        c.inc();
        c.add(4);
        // Second lookup returns the same underlying cell.
        assert_eq!(reg.counter("repairs").get(), 5);
        let g = reg.gauge("vocab");
        g.set(10);
        g.add(-3);
        g.max(5);
        assert_eq!(reg.gauge("vocab").get(), 7);
    }

    #[test]
    fn histogram_buckets_are_monotone_and_aligned() {
        // Every value must land in a bucket whose lower bound ≤ value, and
        // bucket lower bounds must be strictly increasing.
        for i in 1..NUM_BUCKETS {
            assert!(bucket_lower_bound(i) > bucket_lower_bound(i - 1), "{i}");
            assert_eq!(
                bucket_of(bucket_lower_bound(i)),
                i,
                "lower bound of bucket {i} maps back to it"
            );
        }
        for v in [0u64, 1, 7, 8, 9, 255, 256, 1023, 1 << 20, u64::MAX] {
            let b = bucket_of(v);
            assert!(bucket_lower_bound(b) <= v, "{v}");
            if b + 1 < NUM_BUCKETS {
                assert!(v < bucket_lower_bound(b + 1), "{v}");
            }
        }
    }

    #[test]
    fn quantiles_exact_at_bucket_boundaries() {
        let h = Histogram::default();
        // 100 samples of exactly 1024 (a power of two = bucket lower
        // bound): all quantiles report exactly 1024.
        for _ in 0..100 {
            h.record(1024);
        }
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 1024, "q={q}");
        }
        assert_eq!(h.max(), 1024);
        assert_eq!(h.sum(), 102_400);
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn quantiles_split_bimodal_distributions() {
        let h = Histogram::default();
        for _ in 0..95 {
            h.record(8);
        }
        for _ in 0..5 {
            h.record(1 << 30);
        }
        assert_eq!(h.quantile(0.50), 8);
        assert_eq!(h.quantile(0.95), 8, "rank 95 is the last of the 8s");
        assert_eq!(h.quantile(0.99), 1 << 30);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::default();
        for v in 0..8u64 {
            h.record(v);
        }
        // Values below 2^3 get dedicated buckets: the median of {0..7} is
        // reported exactly, not rounded to a power of two.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.to_json().get("p99").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn snapshot_schema_and_determinism() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter("z.second").add(2);
            reg.counter("a.first").add(1);
            reg.gauge("g").set(-5);
            let h = reg.histogram("h");
            for v in [1u64, 2, 4, 1024] {
                h.record(v);
            }
            reg
        };
        let a = build().snapshot();
        let b = build().snapshot();
        // Same behavior => byte-identical snapshots, regardless of
        // registration order.
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(
            a.get("counters").unwrap().get("a.first").unwrap().as_i64(),
            Some(1)
        );
        assert_eq!(
            a.get("gauges").unwrap().get("g").unwrap().as_i64(),
            Some(-5)
        );
        let h = a.get("histograms").unwrap().get("h").unwrap();
        for key in ["count", "sum", "max", "p50", "p95", "p99"] {
            assert!(h.get(key).is_some(), "missing histogram key {key}");
        }
    }

    #[test]
    fn span_timer_records_on_drop() {
        let reg = MetricsRegistry::new();
        {
            let _span = reg.span("stage.test");
            std::hint::black_box(());
        }
        reg.time("stage.test", || std::hint::black_box(1 + 1));
        let h = reg.histogram("stage.test_ns");
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn labeled_series_are_independent_and_canonical() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("repair.rule.applied", &[("rule", "r0"), ("attr", "city")]);
        let b = reg.counter_with("repair.rule.applied", &[("rule", "r1"), ("attr", "city")]);
        a.inc();
        b.add(3);
        // Label order never matters: the same set resolves to the same cell.
        let a_again = reg.counter_with("repair.rule.applied", &[("attr", "city"), ("rule", "r0")]);
        a_again.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 3);
        let counters = reg.snapshot();
        let counters = counters.get("counters").unwrap();
        assert_eq!(
            counters
                .get("repair.rule.applied{attr=\"city\",rule=\"r0\"}")
                .unwrap()
                .as_i64(),
            Some(2)
        );
        assert_eq!(
            counters
                .get("repair.rule.applied{attr=\"city\",rule=\"r1\"}")
                .unwrap()
                .as_i64(),
            Some(3)
        );
        // Unlabeled and labeled metrics of the same name are distinct series.
        reg.counter("repair.rule.applied").add(7);
        assert_eq!(reg.counter("repair.rule.applied").get(), 7);
    }

    #[test]
    fn series_key_escapes_label_values() {
        assert_eq!(series_key("m", &[]), "m");
        assert_eq!(
            series_key("m", &[("k", "a\"b\\c\nd")]),
            "m{k=\"a\\\"b\\\\c\\nd\"}"
        );
    }

    #[test]
    fn concurrent_labeled_updates_with_live_snapshots() {
        // N writer threads hammer labeled counters and histograms while a
        // reader thread snapshots concurrently. Every observed snapshot
        // must be internally consistent (schema intact, values within the
        // range written so far) and the final totals must be exact.
        const THREADS: u64 = 4;
        const ITERS: u64 = 5_000;
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let reg = reg.clone();
                s.spawn(move || {
                    let rule = format!("r{t}");
                    let c = reg.counter_with("stress.hits", &[("rule", &rule)]);
                    let h = reg.histogram_with("stress.latency", &[("rule", &rule)]);
                    for i in 0..ITERS {
                        c.inc();
                        h.record(i);
                    }
                });
            }
            let reader = reg.clone();
            s.spawn(move || {
                for _ in 0..50 {
                    let snap = reader.snapshot();
                    let counters = snap.get("counters").unwrap();
                    if let Json::Obj(map) = counters {
                        for (key, v) in map {
                            let v = v.as_i64().unwrap();
                            assert!(
                                (0..=ITERS as i64).contains(&v),
                                "mid-run snapshot of {key} out of range: {v}"
                            );
                        }
                    } else {
                        panic!("counters is not an object");
                    }
                    std::thread::yield_now();
                }
            });
        });
        let snap = reg.snapshot();
        for t in 0..THREADS {
            let rule = format!("r{t}");
            let key = series_key("stress.hits", &[("rule", &rule)]);
            assert_eq!(
                snap.get("counters").unwrap().get(&key).unwrap().as_i64(),
                Some(ITERS as i64)
            );
            let hkey = series_key("stress.latency", &[("rule", &rule)]);
            let h = snap.get("histograms").unwrap().get(&hkey).unwrap();
            assert_eq!(h.get("count").unwrap().as_i64(), Some(ITERS as i64));
            assert_eq!(
                h.get("sum").unwrap().as_i64(),
                Some((ITERS * (ITERS - 1) / 2) as i64)
            );
        }
    }

    #[test]
    fn handles_are_thread_safe() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("par");
        let h = reg.histogram("hpar");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (c, h) = (c.clone(), h.clone());
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
