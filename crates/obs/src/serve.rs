//! A minimal, std-only HTTP/1.1 scrape endpoint over a shared
//! [`MetricsRegistry`] — the live half of the exposition layer. The
//! `fixd` repair daemon mounts the same routes (plus the repair surface)
//! over the shared [`crate::http`] plumbing.
//!
//! [`MetricsServer::bind`] spawns one background thread with a
//! non-blocking accept loop; each request is answered from a fresh
//! registry snapshot, so scraping a long repair mid-flight sees live
//! counters. Routes:
//!
//! * `GET /metrics` — Prometheus text format v0.0.4 ([`crate::expose`]);
//! * `GET /metrics.json` — the registry's JSON snapshot;
//! * `GET /healthz` — `ok`.
//!
//! The server keeps an exact scrape count so drivers (and CI) can hold a
//! process alive until a scraper has actually come by, then shut down
//! deterministically. Socket plumbing (request parse, response write,
//! client) lives in [`crate::http`], shared with `fixd`.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::expose::prometheus_text;
use crate::http::{Request, Response};
use crate::metrics::MetricsRegistry;

/// A running scrape endpoint. Dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop and joins the
/// thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    scrapes: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and start
    /// serving snapshots of `registry` on a background thread.
    pub fn bind(addr: impl ToSocketAddrs, registry: MetricsRegistry) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let scrapes = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let scrapes = scrapes.clone();
            let stop = stop.clone();
            std::thread::Builder::new()
                .name("obs-metrics-server".to_string())
                .spawn(move || accept_loop(listener, registry, scrapes, stop))?
        };
        Ok(MetricsServer {
            addr,
            scrapes,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scrapes served so far (`/metrics` + `/metrics.json` requests).
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Block until at least `n` scrapes have been served. Checks every
    /// few milliseconds; intended for `--expose-hold` style lifecycles
    /// where CI keeps the process alive until the scraper has come by.
    pub fn wait_for_scrapes(&self, n: u64) {
        while self.scrapes() < n {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stop accepting and join the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: TcpListener,
    registry: MetricsRegistry,
    scrapes: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: scrape traffic is tiny and serialized
                // handling keeps the scrape counter exact.
                let _ = serve_one(stream, &registry, &scrapes);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    scrapes: &AtomicU64,
) -> io::Result<()> {
    let request = Request::read_from(&mut stream)?;
    let response = if request.method != "GET" {
        Response::text(405, "method not allowed\n")
    } else {
        match request.path.as_str() {
            "/metrics" => {
                scrapes.fetch_add(1, Ordering::Relaxed);
                Response::new(
                    200,
                    "text/plain; version=0.0.4; charset=utf-8",
                    prometheus_text(&registry.snapshot()).into_bytes(),
                )
            }
            "/metrics.json" => {
                scrapes.fetch_add(1, Ordering::Relaxed);
                Response::json(200, format!("{}\n", registry.snapshot()))
            }
            "/healthz" => Response::text(200, "ok\n"),
            _ => Response::text(404, "not found\n"),
        }
    };
    response.write_to(&mut stream)
}

pub use crate::http::http_get;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expose::parse_prometheus;

    #[test]
    fn serves_metrics_json_and_health() {
        let registry = MetricsRegistry::new();
        registry.counter("repair.rules_applied").add(5);
        registry
            .counter_with("repair.rule.applied", &[("rule", "r0"), ("attr", "city")])
            .add(2);
        let server = MetricsServer::bind("127.0.0.1:0", registry.clone()).unwrap();
        let base = format!("http://{}", server.addr());

        let (status, body) = http_get(&format!("{base}/healthz")).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, text) = http_get(&format!("{base}/metrics")).unwrap();
        assert_eq!(status, 200);
        let samples = parse_prometheus(&text).expect("exposition must parse");
        assert!(samples
            .iter()
            .any(|s| s.name == "repair_rules_applied" && s.value == 5.0));

        // Live view: bump a counter, scrape again, see the new value.
        registry.counter("repair.rules_applied").add(1);
        let (_, text) = http_get(&format!("{base}/metrics")).unwrap();
        assert!(text.contains("repair_rules_applied 6"), "{text}");

        let (status, json) = http_get(&format!("{base}/metrics.json")).unwrap();
        assert_eq!(status, 200);
        let parsed = crate::json::parse(&json).expect("snapshot must parse");
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("repair.rules_applied")
                .unwrap()
                .as_i64(),
            Some(6)
        );

        let (status, _) = http_get(&format!("{base}/nope")).unwrap();
        assert_eq!(status, 404);

        assert_eq!(server.scrapes(), 3, "three metric scrapes served");
        server.wait_for_scrapes(3);
        server.shutdown();
    }
}
