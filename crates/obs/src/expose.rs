//! Prometheus text-format (v0.0.4) exposition over metric snapshots.
//!
//! [`prometheus_text`] renders any [`MetricsRegistry::snapshot`](crate::MetricsRegistry::snapshot)
//! JSON into the exposition format scrapers expect: counters and gauges as
//! single samples, histograms as summaries (`quantile` series plus `_sum`
//! and `_count`). Metric names are sanitized (`.` → `_`); labeled series
//! keys produced by [`series_key`](crate::metrics::series_key) pass their
//! label block through unchanged — the registry's canonical encoding *is*
//! the Prometheus label syntax.
//!
//! [`parse_prometheus`] is the matching tiny parser — enough to validate a
//! scrape in tests and `fixctl scrape`, not a full client.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::Json;

/// Split a registry series key into `(name, label_block)`, where the
/// label block keeps its surrounding braces (`{k="v"}`) or is `""` for an
/// unlabeled series.
pub fn split_series(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// Map a registry metric name onto the Prometheus name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): dots and any other invalid byte become
/// `_`, and a leading digit gets a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
            continue;
        }
        let valid = c.is_ascii_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit();
        out.push(if valid { c } else { '_' });
    }
    out
}

/// One metric family: its `# TYPE` plus all sample lines, keyed by
/// sanitized name so families render once even when labeled and unlabeled
/// series interleave in snapshot order.
#[derive(Default)]
struct Family {
    kind: &'static str,
    samples: Vec<String>,
}

/// Render a snapshot (the `{"counters":…,"gauges":…,"histograms":…}`
/// schema) as Prometheus text format v0.0.4. Output is deterministic:
/// families sorted by name, samples in snapshot (sorted-key) order.
pub fn prometheus_text(snapshot: &Json) -> String {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    let mut add = |name: String, kind: &'static str, line: String| {
        let fam = families.entry(name).or_default();
        fam.kind = kind;
        fam.samples.push(line);
    };

    let section = |key: &str| {
        snapshot
            .get(key)
            .and_then(|v| v.as_obj())
            .cloned()
            .unwrap_or_default()
    };

    for (key, v) in section("counters") {
        let (name, labels) = split_series(&key);
        let name = sanitize_name(name);
        let value = v.as_i64().unwrap_or(0);
        let line = format!("{name}{labels} {value}");
        add(name, "counter", line);
    }
    for (key, v) in section("gauges") {
        let (name, labels) = split_series(&key);
        let name = sanitize_name(name);
        let value = v.as_i64().unwrap_or(0);
        let line = format!("{name}{labels} {value}");
        add(name, "gauge", line);
    }
    for (key, v) in section("histograms") {
        let (name, labels) = split_series(&key);
        let name = sanitize_name(name);
        let stat = |field: &str| v.get(field).and_then(|x| x.as_i64()).unwrap_or(0);
        // Summaries: quantile label joins any series labels.
        let joined = |q: &str| {
            if labels.is_empty() {
                format!("{{quantile=\"{q}\"}}")
            } else {
                format!("{},quantile=\"{q}\"}}", &labels[..labels.len() - 1])
            }
        };
        for (q, field) in [("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")] {
            add(
                name.clone(),
                "summary",
                format!("{name}{} {}", joined(q), stat(field)),
            );
        }
        add(
            name.clone(),
            "summary",
            format!("{name}_sum{labels} {}", stat("sum")),
        );
        add(
            name.clone(),
            "summary",
            format!("{name}_count{labels} {}", stat("count")),
        );
    }

    let mut out = String::new();
    for (name, fam) in &families {
        let _ = writeln!(out, "# TYPE {name} {}", fam.kind);
        for line in &fam.samples {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// One sample parsed back out of exposition text.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (for summaries, the `_sum`/`_count` suffixed name).
    pub name: String,
    /// Raw label block including braces, or `""`.
    pub labels: String,
    pub value: f64,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

/// Validate a label block: `{k="v",...}` with proper quoting and escapes.
fn parse_labels(block: &str) -> Result<(), String> {
    parse_label_pairs(block).map(|_| ())
}

/// Parse a label block (`{k="v",...}`, or `""` for no labels) into
/// unescaped `(name, value)` pairs in written order. This is the
/// machine-readable side of [`PromSample::labels`], used by
/// `fixctl scrape --require name{k="v"}` to match a required series
/// regardless of label order.
pub fn parse_label_pairs(block: &str) -> Result<Vec<(String, String)>, String> {
    if block.is_empty() {
        return Ok(Vec::new());
    }
    let inner = block
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("malformed label block {block:?}"))?;
    let mut pairs = Vec::new();
    let mut rest = inner;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {block:?}"))?;
        let key = &rest[..eq];
        if !valid_name(key) {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value in {block:?}"))?;
        // Scan the quoted value, honoring \\ \" \n escapes.
        let mut value = String::new();
        let mut end = None;
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err(format!("bad escape in label value in {block:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {block:?}"))?;
        pairs.push((key.to_string(), value));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            if r.is_empty() {
                return Err(format!("trailing comma in {block:?}"));
            }
            rest = r;
        } else if !rest.is_empty() {
            return Err(format!("junk after label value in {block:?}"));
        }
    }
    Ok(pairs)
}

/// Parse (and thereby validate) Prometheus text exposition. Returns every
/// sample; `# HELP`/`# TYPE`/blank lines are skipped, anything else
/// malformed is an error naming the offending line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            if let Some("TYPE") = words.next() {
                let name = words.next().unwrap_or("");
                let kind = words.next().unwrap_or("");
                if !valid_name(name)
                    || !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    )
                {
                    return Err(format!("line {}: bad TYPE comment: {line}", lineno + 1));
                }
            }
            continue;
        }
        // Sample: name[{labels}] value [timestamp]
        let name_end = line
            .find(|c: char| c == '{' || c.is_ascii_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if !valid_name(name) {
            return Err(format!("line {}: invalid metric name: {line}", lineno + 1));
        }
        let mut rest = &line[name_end..];
        let mut labels = String::new();
        if rest.starts_with('{') {
            let close = rest
                .find('}')
                .ok_or_else(|| format!("line {}: unclosed label block: {line}", lineno + 1))?;
            labels = rest[..=close].to_string();
            parse_labels(&labels).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            rest = &rest[close + 1..];
        }
        let mut fields = rest.split_whitespace();
        let value = fields
            .next()
            .ok_or_else(|| format!("line {}: missing value: {line}", lineno + 1))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        if let Some(ts) = fields.next() {
            ts.parse::<i64>()
                .map_err(|_| format!("line {}: bad timestamp {ts:?}", lineno + 1))?;
        }
        if fields.next().is_some() {
            return Err(format!("line {}: trailing fields: {line}", lineno + 1));
        }
        samples.push(PromSample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn renders_and_reparses_a_registry_snapshot() {
        let reg = MetricsRegistry::new();
        reg.counter("repair.rules_applied").add(7);
        reg.counter_with("repair.rule.applied", &[("rule", "r0"), ("attr", "city")])
            .add(3);
        reg.gauge("stream.vocab").set(42);
        let h = reg.histogram_with("repair.rule.latency_ns", &[("rule", "r0")]);
        h.record(100);
        h.record(200);
        let text = prometheus_text(&reg.snapshot());

        assert!(
            text.contains("# TYPE repair_rules_applied counter"),
            "{text}"
        );
        assert!(text.contains("repair_rules_applied 7"), "{text}");
        assert!(
            text.contains("repair_rule_applied{attr=\"city\",rule=\"r0\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE repair_rule_latency_ns summary"),
            "{text}"
        );
        assert!(
            text.contains("repair_rule_latency_ns{rule=\"r0\",quantile=\"0.5\"}"),
            "{text}"
        );
        assert!(
            text.contains("repair_rule_latency_ns_count{rule=\"r0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("repair_rule_latency_ns_sum{rule=\"r0\"} 300"),
            "{text}"
        );

        let samples = parse_prometheus(&text).expect("own output must parse");
        assert!(samples
            .iter()
            .any(|s| s.name == "repair_rules_applied" && s.value == 7.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "repair_rule_applied" && s.labels.contains("rule=\"r0\"")));
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.counter_with("m", &[("b", "2")]).inc();
            reg.counter_with("m", &[("a", "1")]).inc();
            reg.counter("z").inc();
            prometheus_text(&reg.snapshot())
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("repair.rule.applied"), "repair_rule_applied");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }

    #[test]
    fn label_blocks_parse_to_unescaped_pairs() {
        assert_eq!(parse_label_pairs("").unwrap(), vec![]);
        assert_eq!(
            parse_label_pairs("{endpoint=\"repair\",status=\"200\"}").unwrap(),
            vec![
                ("endpoint".to_string(), "repair".to_string()),
                ("status".to_string(), "200".to_string()),
            ]
        );
        assert_eq!(
            parse_label_pairs("{k=\"a\\\"b\\\\c\\nd\"}").unwrap(),
            vec![("k".to_string(), "a\"b\\c\nd".to_string())]
        );
        assert!(parse_label_pairs("{k=v}").is_err());
        assert!(parse_label_pairs("{k=\"v\"").is_err());
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("ok 1\n").is_ok());
        assert!(parse_prometheus("bad name 1\n").is_err());
        assert!(parse_prometheus("m{k=\"v\" 1\n").is_err(), "unclosed block");
        assert!(parse_prometheus("m{k=v} 1\n").is_err(), "unquoted value");
        assert!(parse_prometheus("m nope\n").is_err(), "non-numeric value");
        assert!(parse_prometheus("m 1 2 3\n").is_err(), "trailing fields");
        assert!(parse_prometheus("# TYPE m nonsense\n").is_err());
        assert!(parse_prometheus("# HELP m anything at all\n").is_ok());
        assert!(parse_prometheus("m{k=\"a\\\"b\"} 2 1700000000\n").is_ok());
    }
}
