//! Structured stderr logging: `key=value` lines gated by a global level.
//!
//! ```text
//! level=info event=repair.done algo=lrepair rows=100000 updates=3313 elapsed_ms=42
//! ```
//!
//! The level defaults to [`Level::Off`] so library users pay nothing; the
//! CLI sets it from `--log <off|info|debug>`. Values containing spaces,
//! `=`, or quotes are double-quoted with backslash escapes so lines stay
//! machine-splittable.

use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No output (the default).
    Off = 0,
    /// Stage-level progress and results.
    Info = 1,
    /// Per-step detail (counters, intermediate sizes).
    Debug = 2,
}

impl std::str::FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s {
            "off" => Ok(Level::Off),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!("unknown log level `{other}` (off|info|debug)")),
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Off as u8);

/// Set the global level.
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current global level.
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        1 => Level::Info,
        2 => Level::Debug,
        _ => Level::Off,
    }
}

/// True when `level` would be emitted.
#[inline]
pub fn enabled(at: Level) -> bool {
    at != Level::Off && at <= level()
}

/// Emit one structured line at `level`. Prefer the [`crate::info!`] /
/// [`crate::debug!`] macros, which skip argument formatting when disabled.
pub fn emit(at: Level, event: &str, fields: &[(&str, String)]) {
    if !enabled(at) {
        return;
    }
    let mut line = String::with_capacity(64);
    let _ = write!(
        line,
        "level={} event={}",
        match at {
            Level::Off => "off",
            Level::Info => "info",
            Level::Debug => "debug",
        },
        event
    );
    for (k, v) in fields {
        let _ = write!(line, " {k}={}", quote_value(v));
    }
    line.push('\n');
    // One write_all per line keeps concurrent workers' lines whole.
    let _ = std::io::stderr().write_all(line.as_bytes());
}

fn quote_value(v: &str) -> String {
    if !v.is_empty() && !v.contains([' ', '=', '"', '\n', '\t']) {
        return v.to_string();
    }
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `info!("event", key = value, ...)` — emit at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($event:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::emit(
                $crate::log::Level::Info,
                $event,
                &[$((stringify!($k), ::std::format!("{}", $v))),*],
            );
        }
    };
}

/// `debug!("event", key = value, ...)` — emit at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($event:expr $(, $k:ident = $v:expr)* $(,)?) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::emit(
                $crate::log::Level::Debug,
                $event,
                &[$((stringify!($k), ::std::format!("{}", $v))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("off".parse::<Level>().unwrap(), Level::Off);
        assert_eq!("info".parse::<Level>().unwrap(), Level::Info);
        assert_eq!("debug".parse::<Level>().unwrap(), Level::Debug);
        assert!("warn".parse::<Level>().is_err());
        assert!(Level::Info < Level::Debug);
    }

    #[test]
    fn quoting_keeps_lines_splittable() {
        assert_eq!(quote_value("plain"), "plain");
        assert_eq!(quote_value("has space"), "\"has space\"");
        assert_eq!(quote_value("a=b"), "\"a=b\"");
        assert_eq!(quote_value("say \"hi\""), "\"say \\\"hi\\\"\"");
        assert_eq!(quote_value(""), "\"\"");
    }

    #[test]
    fn disabled_levels_do_not_emit() {
        // `emit` consults the global level; Off is the default and the
        // macros early-out before formatting their arguments.
        assert!(!enabled(Level::Info));
        let mut evaluated = false;
        crate::info!(
            "test.event",
            x = {
                evaluated = true;
                1
            }
        );
        assert!(!evaluated, "arguments must not be formatted when off");
    }
}
