//! Observer hooks for the repair pipeline.
//!
//! The repair drivers in `fixrules` are generic over a [`RepairObserver`];
//! every hook has an empty default body and the drivers' public entry
//! points pass [`NoopObserver`], so the instrumented code monomorphizes to
//! exactly the uninstrumented hot path when observability is off — zero
//! branches, zero atomics. [`MetricsObserver`] is the production
//! implementation, fanning each hook into [`MetricsRegistry`] counters and
//! histograms under the documented names.
//!
//! Hook arguments are plain `usize`/`u64` so this crate stays a leaf with
//! no knowledge of relational types; callers pass `RuleId::index()` etc.

use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};

/// Value-carrying description of one applied fix, passed to
/// [`RepairObserver::cell_repaired`] by the table and stream drivers.
///
/// Plain ids only (row/attr/rule ordinals, interned symbol ids) so this
/// crate stays a leaf; consumers that know the rule set — like the
/// provenance ledger in `fixrules` — expand them back to evidence bindings
/// and names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellFix {
    /// Row index in the table (record index for the stream driver).
    pub row: usize,
    /// Application order within the row, from 0.
    pub ordinal: usize,
    /// `RuleId::index()` of the rule that fired.
    pub rule: usize,
    /// `AttrId::index()` of the updated attribute.
    pub attr: usize,
    /// Interned symbol id of the value before the update.
    pub old: u32,
    /// Interned symbol id of the value after the update.
    pub new: u32,
    /// Chase round (`cRepair`) or queue-pop index (`lRepair`), 1-based.
    pub round: u32,
}

/// Hooks called from the repair stack. All default to no-ops.
///
/// `Sync` is required because the parallel driver shares one observer
/// across workers.
pub trait RepairObserver: Sync {
    /// One outer scan round of `cRepair` over the rule set.
    #[inline]
    fn chase_round(&self) {}

    /// A rule fired and updated attribute `attr`.
    #[inline]
    fn rule_applied(&self, rule: usize, attr: usize) {
        let _ = (rule, attr);
    }

    /// A tuple finished repairing after `rounds` chase rounds / queue pops
    /// with `updates` cell updates.
    #[inline]
    fn tuple_done(&self, rounds: usize, updates: usize) {
        let _ = (rounds, updates);
    }

    /// `count` tuples finished with identical per-tuple stats — the
    /// columnar driver coalesces the members of one signature group into a
    /// single call so aggregating observers pay O(1) instead of O(members).
    /// The default replays [`RepairObserver::tuple_done`] `count` times, so
    /// per-tuple observers see the same call multiset (batched calls are
    /// flushed per batch, so ordering relative to other hooks may differ
    /// from the row-at-a-time drivers; final aggregates do not).
    #[inline]
    fn tuples_done(&self, rounds: usize, updates: usize, count: usize) {
        for _ in 0..count {
            self.tuple_done(rounds, updates);
        }
    }

    /// `lRepair` consulted an inverted list and found `rules_hit` rules.
    #[inline]
    fn index_probe(&self, rules_hit: usize) {
        let _ = rules_hit;
    }

    /// A hash counter reached its `|X|` target and the rule was enqueued.
    #[inline]
    fn counter_saturated(&self) {}

    /// A parallel worker finished its shard.
    #[inline]
    fn worker_done(&self, worker: usize, rows: usize, updates: usize, busy_ns: u64) {
        let _ = (worker, rows, updates, busy_ns);
    }

    /// The columnar driver grouped one batch by tuple signature: `rows`
    /// rows fell into `groups` distinct signatures, and `scattered` rows
    /// were repaired by scattering a group plan instead of an engine run
    /// or cache probe.
    #[inline]
    fn batch_grouped(&self, rows: usize, groups: usize, scattered: usize) {
        let _ = (rows, groups, scattered);
    }

    /// The streaming driver wrote one record; `vocab` is the interner size.
    #[inline]
    fn stream_record(&self, vocab: usize) {
        let _ = vocab;
    }

    /// A compiled driver probed one evidence-group dispatch table and found
    /// `rules_hit` matching rules.
    #[inline]
    fn plan_probe(&self, rules_hit: usize) {
        let _ = rules_hit;
    }

    /// A compiled driver looked a tuple signature up in the plan cache.
    #[inline]
    fn plan_cache_lookup(&self, hit: bool) {
        let _ = hit;
    }

    /// The plan cache evicted an entry to stay within its capacity.
    #[inline]
    fn plan_cache_evicted(&self) {}

    /// A consistency checker examined `pairs` rule pairs.
    #[inline]
    fn pairs_checked(&self, pairs: usize) {
        let _ = pairs;
    }

    /// A consistency checker found a conflicting pair; `case` is the
    /// Fig 4 characterization case name.
    #[inline]
    fn conflict_found(&self, case: &'static str) {
        let _ = case;
    }

    /// The static analyzer (`fixlint`) emitted one finding; `code` is the
    /// stable diagnostic code (`FR001`, ...) and `severity` its severity
    /// name (`error`/`warning`/`note`).
    #[inline]
    fn lint_finding(&self, code: &'static str, severity: &'static str) {
        let _ = (code, severity);
    }

    /// A table/stream driver applied one fix, with full values — the
    /// provenance hook. Called once per update after each tuple completes
    /// (the drivers know the row index there; per-tuple algorithms don't).
    #[inline]
    fn cell_repaired(&self, fix: CellFix) {
        let _ = fix;
    }

    /// A rule was evaluated against a tuple's evidence but did not fire —
    /// an evidence-pattern mismatch, an already-assured B cell, or a
    /// failed post-probe re-verification. The per-rule miss companion to
    /// [`RepairObserver::rule_applied`].
    #[inline]
    fn rule_rejected(&self, rule: usize) {
        let _ = rule;
    }

    /// Wall-clock nanoseconds one evaluation of `rule` took (whether it
    /// fired or not). Drivers only call this when
    /// [`RepairObserver::wants_rule_timing`] returns true, so the
    /// `Instant::now` pair is skipped entirely otherwise.
    #[inline]
    fn rule_latency(&self, rule: usize, ns: u64) {
        let _ = (rule, ns);
    }

    /// A plan-cache replay re-applied `rule` to attribute `attr`. Fires
    /// alongside [`RepairObserver::rule_applied`] during replays,
    /// attributing the application to a memoized plan rather than a live
    /// evaluation.
    #[inline]
    fn plan_replayed(&self, rule: usize, attr: usize) {
        let _ = (rule, attr);
    }

    /// A consistency checker materialized a witness tuple for a conflict.
    #[inline]
    fn witness_found(&self) {}

    /// The certifier (`fixcert`) examined `pairs` interaction-graph pairs
    /// for confluence.
    #[inline]
    fn cert_pair_checked(&self, pairs: usize) {
        let _ = pairs;
    }

    /// The certifier executed one synthesized witness tuple through the
    /// compiled chase engine (two rule orders count as one run).
    #[inline]
    fn cert_witness_run(&self) {}

    /// The certifier emitted one finding (`FR009`/`FR010`/`FR011`).
    #[inline]
    fn cert_finding(&self, code: &'static str, severity: &'static str) {
        let _ = (code, severity);
    }

    /// A certification pass finished; `certified` is the verdict.
    #[inline]
    fn cert_completed(&self, certified: bool) {
        let _ = certified;
    }

    /// Whether this observer consumes [`RepairObserver::rule_latency`].
    /// Defaults to false; under [`NoopObserver`] the drivers' timing
    /// branches monomorphize away, keeping the uninstrumented hot path.
    #[inline]
    fn wants_rule_timing(&self) -> bool {
        false
    }

    /// A driver is about to repair one row; `values` are the row's
    /// *pre-repair* interned symbol ids in attribute order. The quality
    /// monitor's window-feeding hook — pairs with
    /// [`RepairObserver::cell_repaired`], which reports what changed.
    /// Drivers only call this when [`RepairObserver::wants_rows`]
    /// returns true, so the pre-repair copy is skipped entirely
    /// otherwise.
    #[inline]
    fn row_observed(&self, values: &[u32]) {
        let _ = values;
    }

    /// Whether this observer consumes [`RepairObserver::row_observed`].
    /// Defaults to false; under [`NoopObserver`] the drivers' row-copy
    /// branches monomorphize away, keeping the uninstrumented hot path.
    #[inline]
    fn wants_rows(&self) -> bool {
        false
    }
}

/// Observers forward through references, so generic drivers can take a
/// `&dyn RepairObserver` (or a `&&impl RepairObserver`) without the caller
/// monomorphizing a new driver per observer stack.
impl<T: RepairObserver + ?Sized> RepairObserver for &T {
    #[inline]
    fn chase_round(&self) {
        (**self).chase_round();
    }

    #[inline]
    fn rule_applied(&self, rule: usize, attr: usize) {
        (**self).rule_applied(rule, attr);
    }

    #[inline]
    fn tuple_done(&self, rounds: usize, updates: usize) {
        (**self).tuple_done(rounds, updates);
    }

    #[inline]
    fn tuples_done(&self, rounds: usize, updates: usize, count: usize) {
        (**self).tuples_done(rounds, updates, count);
    }

    #[inline]
    fn index_probe(&self, rules_hit: usize) {
        (**self).index_probe(rules_hit);
    }

    #[inline]
    fn counter_saturated(&self) {
        (**self).counter_saturated();
    }

    #[inline]
    fn worker_done(&self, worker: usize, rows: usize, updates: usize, busy_ns: u64) {
        (**self).worker_done(worker, rows, updates, busy_ns);
    }

    #[inline]
    fn batch_grouped(&self, rows: usize, groups: usize, scattered: usize) {
        (**self).batch_grouped(rows, groups, scattered);
    }

    #[inline]
    fn stream_record(&self, vocab: usize) {
        (**self).stream_record(vocab);
    }

    #[inline]
    fn plan_probe(&self, rules_hit: usize) {
        (**self).plan_probe(rules_hit);
    }

    #[inline]
    fn plan_cache_lookup(&self, hit: bool) {
        (**self).plan_cache_lookup(hit);
    }

    #[inline]
    fn plan_cache_evicted(&self) {
        (**self).plan_cache_evicted();
    }

    #[inline]
    fn pairs_checked(&self, pairs: usize) {
        (**self).pairs_checked(pairs);
    }

    #[inline]
    fn conflict_found(&self, case: &'static str) {
        (**self).conflict_found(case);
    }

    #[inline]
    fn lint_finding(&self, code: &'static str, severity: &'static str) {
        (**self).lint_finding(code, severity);
    }

    #[inline]
    fn cell_repaired(&self, fix: CellFix) {
        (**self).cell_repaired(fix);
    }

    #[inline]
    fn rule_rejected(&self, rule: usize) {
        (**self).rule_rejected(rule);
    }

    #[inline]
    fn rule_latency(&self, rule: usize, ns: u64) {
        (**self).rule_latency(rule, ns);
    }

    #[inline]
    fn plan_replayed(&self, rule: usize, attr: usize) {
        (**self).plan_replayed(rule, attr);
    }

    #[inline]
    fn witness_found(&self) {
        (**self).witness_found();
    }

    #[inline]
    fn cert_pair_checked(&self, pairs: usize) {
        (**self).cert_pair_checked(pairs);
    }

    #[inline]
    fn cert_witness_run(&self) {
        (**self).cert_witness_run();
    }

    #[inline]
    fn cert_finding(&self, code: &'static str, severity: &'static str) {
        (**self).cert_finding(code, severity);
    }

    #[inline]
    fn cert_completed(&self, certified: bool) {
        (**self).cert_completed(certified);
    }

    #[inline]
    fn wants_rule_timing(&self) -> bool {
        (**self).wants_rule_timing()
    }

    #[inline]
    fn row_observed(&self, values: &[u32]) {
        (**self).row_observed(values);
    }

    #[inline]
    fn wants_rows(&self) -> bool {
        (**self).wants_rows()
    }
}

/// The do-nothing observer; the default for every repair entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl RepairObserver for NoopObserver {}

/// Fans every hook out to two observers, so e.g. a `MetricsObserver` and a
/// provenance ledger can watch the same repair run: `Tee(&metrics, &prov)`.
#[derive(Debug, Clone, Copy)]
pub struct Tee<'a, A: ?Sized, B: ?Sized>(pub &'a A, pub &'a B);

impl<A: RepairObserver + ?Sized, B: RepairObserver + ?Sized> RepairObserver for Tee<'_, A, B> {
    #[inline]
    fn chase_round(&self) {
        self.0.chase_round();
        self.1.chase_round();
    }

    #[inline]
    fn rule_applied(&self, rule: usize, attr: usize) {
        self.0.rule_applied(rule, attr);
        self.1.rule_applied(rule, attr);
    }

    #[inline]
    fn tuple_done(&self, rounds: usize, updates: usize) {
        self.0.tuple_done(rounds, updates);
        self.1.tuple_done(rounds, updates);
    }

    #[inline]
    fn tuples_done(&self, rounds: usize, updates: usize, count: usize) {
        self.0.tuples_done(rounds, updates, count);
        self.1.tuples_done(rounds, updates, count);
    }

    #[inline]
    fn index_probe(&self, rules_hit: usize) {
        self.0.index_probe(rules_hit);
        self.1.index_probe(rules_hit);
    }

    #[inline]
    fn counter_saturated(&self) {
        self.0.counter_saturated();
        self.1.counter_saturated();
    }

    #[inline]
    fn worker_done(&self, worker: usize, rows: usize, updates: usize, busy_ns: u64) {
        self.0.worker_done(worker, rows, updates, busy_ns);
        self.1.worker_done(worker, rows, updates, busy_ns);
    }

    #[inline]
    fn batch_grouped(&self, rows: usize, groups: usize, scattered: usize) {
        self.0.batch_grouped(rows, groups, scattered);
        self.1.batch_grouped(rows, groups, scattered);
    }

    #[inline]
    fn stream_record(&self, vocab: usize) {
        self.0.stream_record(vocab);
        self.1.stream_record(vocab);
    }

    #[inline]
    fn plan_probe(&self, rules_hit: usize) {
        self.0.plan_probe(rules_hit);
        self.1.plan_probe(rules_hit);
    }

    #[inline]
    fn plan_cache_lookup(&self, hit: bool) {
        self.0.plan_cache_lookup(hit);
        self.1.plan_cache_lookup(hit);
    }

    #[inline]
    fn plan_cache_evicted(&self) {
        self.0.plan_cache_evicted();
        self.1.plan_cache_evicted();
    }

    #[inline]
    fn pairs_checked(&self, pairs: usize) {
        self.0.pairs_checked(pairs);
        self.1.pairs_checked(pairs);
    }

    #[inline]
    fn conflict_found(&self, case: &'static str) {
        self.0.conflict_found(case);
        self.1.conflict_found(case);
    }

    #[inline]
    fn lint_finding(&self, code: &'static str, severity: &'static str) {
        self.0.lint_finding(code, severity);
        self.1.lint_finding(code, severity);
    }

    #[inline]
    fn cell_repaired(&self, fix: CellFix) {
        self.0.cell_repaired(fix);
        self.1.cell_repaired(fix);
    }

    #[inline]
    fn rule_rejected(&self, rule: usize) {
        self.0.rule_rejected(rule);
        self.1.rule_rejected(rule);
    }

    #[inline]
    fn rule_latency(&self, rule: usize, ns: u64) {
        self.0.rule_latency(rule, ns);
        self.1.rule_latency(rule, ns);
    }

    #[inline]
    fn plan_replayed(&self, rule: usize, attr: usize) {
        self.0.plan_replayed(rule, attr);
        self.1.plan_replayed(rule, attr);
    }

    #[inline]
    fn witness_found(&self) {
        self.0.witness_found();
        self.1.witness_found();
    }

    #[inline]
    fn cert_pair_checked(&self, pairs: usize) {
        self.0.cert_pair_checked(pairs);
        self.1.cert_pair_checked(pairs);
    }

    #[inline]
    fn cert_witness_run(&self) {
        self.0.cert_witness_run();
        self.1.cert_witness_run();
    }

    #[inline]
    fn cert_finding(&self, code: &'static str, severity: &'static str) {
        self.0.cert_finding(code, severity);
        self.1.cert_finding(code, severity);
    }

    #[inline]
    fn cert_completed(&self, certified: bool) {
        self.0.cert_completed(certified);
        self.1.cert_completed(certified);
    }

    #[inline]
    fn wants_rule_timing(&self) -> bool {
        self.0.wants_rule_timing() || self.1.wants_rule_timing()
    }

    #[inline]
    fn row_observed(&self, values: &[u32]) {
        self.0.row_observed(values);
        self.1.row_observed(values);
    }

    #[inline]
    fn wants_rows(&self) -> bool {
        self.0.wants_rows() || self.1.wants_rows()
    }
}

/// Counter/histogram names written by [`MetricsObserver`], in snapshot
/// (sorted) order. Kept public so tests and docs stay in sync with the
/// implementation.
pub const METRIC_NAMES: &[&str] = &[
    "cert.findings",
    "cert.pairs_checked",
    "cert.passes",
    "cert.witness_runs",
    "consistency.conflicts",
    "consistency.pairs_checked",
    "consistency.witness_found",
    "lint.findings",
    "repair.batch.groups",
    "repair.batch.rows",
    "repair.batch.scattered",
    "repair.chase.rounds",
    "repair.index.probe_hits",
    "repair.index.probes",
    "repair.plan.probe_hits",
    "repair.plan.probes",
    "repair.plan_cache.evictions",
    "repair.plan_cache.hits",
    "repair.plan_cache.misses",
    "repair.queue.enqueued",
    "repair.rules_applied",
    "repair.tuples",
    "repair.tuples_touched",
    "repair.updates",
    "stream.records",
];

/// A [`RepairObserver`] that aggregates into a [`MetricsRegistry`].
///
/// Handles are resolved once at construction; each hook is one or two
/// relaxed atomic ops. Per-worker and per-conflict-case metrics use
/// dynamic names (`repair.worker.<i>.rows`, `consistency.conflicts.<case>`)
/// and take the registry lock, but only fire once per worker / conflict.
#[derive(Debug, Clone)]
pub struct MetricsObserver {
    registry: MetricsRegistry,
    batch_rows: Counter,
    batch_groups: Counter,
    batch_scattered: Counter,
    chase_rounds: Counter,
    rules_applied: Counter,
    tuples: Counter,
    tuples_touched: Counter,
    updates: Counter,
    tuple_rounds: Histogram,
    tuple_updates: Histogram,
    probes: Counter,
    probe_hits: Counter,
    plan_probes: Counter,
    plan_probe_hits: Counter,
    plan_hits: Counter,
    plan_misses: Counter,
    plan_evictions: Counter,
    enqueued: Counter,
    stream_records: Counter,
    stream_vocab: Gauge,
    pairs_checked: Counter,
    conflicts: Counter,
    witnesses: Counter,
    lint_findings: Counter,
    cert_pairs: Counter,
    cert_witness_runs: Counter,
    cert_findings: Counter,
    cert_passes: Counter,
}

impl MetricsObserver {
    pub fn new(registry: &MetricsRegistry) -> Self {
        MetricsObserver {
            batch_rows: registry.counter("repair.batch.rows"),
            batch_groups: registry.counter("repair.batch.groups"),
            batch_scattered: registry.counter("repair.batch.scattered"),
            chase_rounds: registry.counter("repair.chase.rounds"),
            rules_applied: registry.counter("repair.rules_applied"),
            tuples: registry.counter("repair.tuples"),
            tuples_touched: registry.counter("repair.tuples_touched"),
            updates: registry.counter("repair.updates"),
            tuple_rounds: registry.histogram("repair.tuple_rounds"),
            tuple_updates: registry.histogram("repair.tuple_updates"),
            probes: registry.counter("repair.index.probes"),
            probe_hits: registry.counter("repair.index.probe_hits"),
            plan_probes: registry.counter("repair.plan.probes"),
            plan_probe_hits: registry.counter("repair.plan.probe_hits"),
            plan_hits: registry.counter("repair.plan_cache.hits"),
            plan_misses: registry.counter("repair.plan_cache.misses"),
            plan_evictions: registry.counter("repair.plan_cache.evictions"),
            enqueued: registry.counter("repair.queue.enqueued"),
            stream_records: registry.counter("stream.records"),
            stream_vocab: registry.gauge("stream.vocab"),
            pairs_checked: registry.counter("consistency.pairs_checked"),
            conflicts: registry.counter("consistency.conflicts"),
            witnesses: registry.counter("consistency.witness_found"),
            lint_findings: registry.counter("lint.findings"),
            cert_pairs: registry.counter("cert.pairs_checked"),
            cert_witness_runs: registry.counter("cert.witness_runs"),
            cert_findings: registry.counter("cert.findings"),
            cert_passes: registry.counter("cert.passes"),
            registry: registry.clone(),
        }
    }

    /// The registry this observer writes to.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

impl RepairObserver for MetricsObserver {
    #[inline]
    fn chase_round(&self) {
        self.chase_rounds.inc();
    }

    #[inline]
    fn rule_applied(&self, _rule: usize, _attr: usize) {
        self.rules_applied.inc();
    }

    #[inline]
    fn tuple_done(&self, rounds: usize, updates: usize) {
        self.tuples.inc();
        if updates > 0 {
            self.tuples_touched.inc();
            self.updates.add(updates as u64);
        }
        self.tuple_rounds.record(rounds as u64);
        self.tuple_updates.record(updates as u64);
    }

    #[inline]
    fn tuples_done(&self, rounds: usize, updates: usize, count: usize) {
        if count == 0 {
            return;
        }
        let n = count as u64;
        self.tuples.add(n);
        if updates > 0 {
            self.tuples_touched.add(n);
            self.updates.add(updates as u64 * n);
        }
        self.tuple_rounds.record_n(rounds as u64, n);
        self.tuple_updates.record_n(updates as u64, n);
    }

    #[inline]
    fn index_probe(&self, rules_hit: usize) {
        self.probes.inc();
        self.probe_hits.add(rules_hit as u64);
    }

    #[inline]
    fn counter_saturated(&self) {
        self.enqueued.inc();
    }

    #[inline]
    fn plan_probe(&self, rules_hit: usize) {
        self.plan_probes.inc();
        self.plan_probe_hits.add(rules_hit as u64);
    }

    #[inline]
    fn plan_cache_lookup(&self, hit: bool) {
        if hit {
            self.plan_hits.inc();
        } else {
            self.plan_misses.inc();
        }
    }

    #[inline]
    fn plan_cache_evicted(&self) {
        self.plan_evictions.inc();
    }

    #[inline]
    fn batch_grouped(&self, rows: usize, groups: usize, scattered: usize) {
        self.batch_rows.add(rows as u64);
        self.batch_groups.add(groups as u64);
        self.batch_scattered.add(scattered as u64);
    }

    fn worker_done(&self, worker: usize, rows: usize, updates: usize, busy_ns: u64) {
        self.registry
            .counter(&format!("repair.worker.{worker}.rows"))
            .add(rows as u64);
        self.registry
            .counter(&format!("repair.worker.{worker}.updates"))
            .add(updates as u64);
        self.registry
            .counter(&format!("repair.worker.{worker}.busy_ns"))
            .add(busy_ns);
        self.registry
            .histogram("repair.worker.busy_ns")
            .record(busy_ns);
    }

    #[inline]
    fn stream_record(&self, vocab: usize) {
        self.stream_records.inc();
        self.stream_vocab.max(vocab as i64);
    }

    #[inline]
    fn pairs_checked(&self, pairs: usize) {
        self.pairs_checked.add(pairs as u64);
    }

    fn conflict_found(&self, case: &'static str) {
        self.conflicts.inc();
        self.registry
            .counter(&format!("consistency.conflicts.{case}"))
            .inc();
    }

    #[inline]
    fn witness_found(&self) {
        self.witnesses.inc();
    }

    fn lint_finding(&self, code: &'static str, severity: &'static str) {
        self.lint_findings.inc();
        self.registry
            .counter(&format!("lint.findings.{code}"))
            .inc();
        self.registry
            .counter(&format!("lint.severity.{severity}"))
            .inc();
    }

    #[inline]
    fn cert_pair_checked(&self, pairs: usize) {
        self.cert_pairs.add(pairs as u64);
    }

    #[inline]
    fn cert_witness_run(&self) {
        self.cert_witness_runs.inc();
    }

    fn cert_finding(&self, code: &'static str, severity: &'static str) {
        self.cert_findings.inc();
        self.registry
            .counter(&format!("cert.findings.{code}"))
            .inc();
        self.registry
            .counter(&format!("cert.severity.{severity}"))
            .inc();
    }

    fn cert_completed(&self, certified: bool) {
        self.cert_passes.inc();
        self.registry
            .counter(if certified {
                "cert.certified"
            } else {
                "cert.rejected"
            })
            .inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopObserver>(), 0);
    }

    #[test]
    fn batched_tuples_done_matches_repeated_tuple_done() {
        // The columnar driver's coalesced hook must leave every counter
        // and histogram exactly where `count` individual calls would.
        let reg_one = MetricsRegistry::new();
        let reg_n = MetricsRegistry::new();
        let one = MetricsObserver::new(&reg_one);
        let batched = MetricsObserver::new(&reg_n);
        for _ in 0..7 {
            one.tuple_done(2, 3);
        }
        for _ in 0..5 {
            one.tuple_done(1, 0);
        }
        batched.tuples_done(2, 3, 7);
        batched.tuples_done(1, 0, 5);
        batched.tuples_done(9, 9, 0); // no-op
        assert_eq!(reg_one.snapshot().to_string(), reg_n.snapshot().to_string());
    }

    #[test]
    fn metrics_observer_aggregates_hooks() {
        let reg = MetricsRegistry::new();
        let obs = MetricsObserver::new(&reg);
        obs.chase_round();
        obs.rule_applied(0, 2);
        obs.rule_applied(3, 1);
        obs.tuple_done(2, 2);
        obs.tuple_done(1, 0);
        obs.index_probe(3);
        obs.index_probe(0);
        obs.counter_saturated();
        obs.plan_probe(2);
        obs.plan_probe(0);
        obs.plan_cache_lookup(true);
        obs.plan_cache_lookup(true);
        obs.plan_cache_lookup(false);
        obs.plan_cache_evicted();
        obs.batch_grouped(100, 7, 93);
        obs.worker_done(1, 500, 20, 1_000);
        obs.stream_record(128);
        obs.stream_record(256);
        obs.pairs_checked(6);
        obs.conflict_found("Mutual");
        obs.lint_finding("FR001", "error");
        obs.lint_finding("FR002", "warning");

        let snap = reg.snapshot();
        let counters = snap.get("counters").unwrap();
        let get = |name: &str| counters.get(name).and_then(|v| v.as_i64()).unwrap();
        assert_eq!(get("repair.chase.rounds"), 1);
        assert_eq!(get("repair.rules_applied"), 2);
        assert_eq!(get("repair.tuples"), 2);
        assert_eq!(get("repair.tuples_touched"), 1);
        assert_eq!(get("repair.updates"), 2);
        assert_eq!(get("repair.index.probes"), 2);
        assert_eq!(get("repair.index.probe_hits"), 3);
        assert_eq!(get("repair.queue.enqueued"), 1);
        assert_eq!(get("repair.plan.probes"), 2);
        assert_eq!(get("repair.plan.probe_hits"), 2);
        assert_eq!(get("repair.plan_cache.hits"), 2);
        assert_eq!(get("repair.plan_cache.misses"), 1);
        assert_eq!(get("repair.plan_cache.evictions"), 1);
        assert_eq!(get("repair.batch.rows"), 100);
        assert_eq!(get("repair.batch.groups"), 7);
        assert_eq!(get("repair.batch.scattered"), 93);
        assert_eq!(get("repair.worker.1.rows"), 500);
        assert_eq!(get("stream.records"), 2);
        assert_eq!(get("consistency.pairs_checked"), 6);
        assert_eq!(get("consistency.conflicts"), 1);
        assert_eq!(get("consistency.conflicts.Mutual"), 1);
        assert_eq!(get("lint.findings"), 2);
        assert_eq!(get("lint.findings.FR001"), 1);
        assert_eq!(get("lint.severity.warning"), 1);
        assert_eq!(
            snap.get("gauges")
                .unwrap()
                .get("stream.vocab")
                .unwrap()
                .as_i64(),
            Some(256)
        );
        assert_eq!(
            snap.get("histograms")
                .unwrap()
                .get("repair.tuple_updates")
                .unwrap()
                .get("count")
                .unwrap()
                .as_i64(),
            Some(2)
        );
    }

    #[test]
    fn documented_metric_names_all_appear() {
        let reg = MetricsRegistry::new();
        let obs = MetricsObserver::new(&reg);
        obs.chase_round();
        obs.rule_applied(0, 0);
        obs.tuple_done(1, 1);
        obs.index_probe(1);
        obs.counter_saturated();
        obs.plan_probe(1);
        obs.plan_cache_lookup(true);
        obs.plan_cache_lookup(false);
        obs.plan_cache_evicted();
        obs.batch_grouped(2, 1, 1);
        obs.stream_record(1);
        obs.pairs_checked(1);
        obs.conflict_found("BiInXj");
        obs.witness_found();
        obs.lint_finding("FR001", "error");
        obs.cert_pair_checked(3);
        obs.cert_witness_run();
        obs.cert_finding("FR009", "error");
        obs.cert_completed(false);
        let snap = reg.snapshot();
        let counters = snap.get("counters").unwrap().as_obj().unwrap();
        for name in METRIC_NAMES {
            assert!(
                counters.contains_key(*name),
                "missing documented metric {name}"
            );
        }
    }
}
