//! Streaming sketches: fixed-memory summaries of value streams.
//!
//! Three std-only, deterministic, mergeable summaries back the repair
//! quality monitor in [`crate::quality`]:
//!
//! * [`CountMinSketch`] — per-value frequency estimates with one-sided
//!   error (never underestimates; an estimate of zero means the value was
//!   definitely never seen). Cells are signed so a caller can *subtract*
//!   (the sketch is linear), which is how post-repair distributions are
//!   derived from pre-repair ones plus cell deltas.
//! * [`DistinctCounter`] — register-based approximate distinct count
//!   (HyperLogLog-style: each key updates the max trailing-zero rank of
//!   one of `m` registers, so insertion order never matters).
//! * [`Reservoir`] — a bounded uniform sample driven by a seeded
//!   [`splitmix64`] generator, so two identical streams sample
//!   identically.
//!
//! All three serialize through [`crate::json`] with sorted keys, making
//! snapshots byte-deterministic. Hashing is [`splitmix64`] with
//! compile-time seeds — no `RandomState`, no process entropy.

use crate::json::Json;

/// The 64-bit finalizer from the splitmix64 generator: a fast, high
/// quality, *fixed* mixer (no per-process seeding, unlike std's
/// `RandomState`), which is what keeps every sketch deterministic.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The flat cell index for hash row `row` of a pre-mixed key hash:
/// double hashing (`h1 + row·h2`, `h2` forced odd) derives every row
/// from one mix, and multiply-shift maps it onto `width` without a
/// division. Shared by [`CountMinSketch`] and [`SlotBloom`] so the two
/// address identical coordinates for the same key.
#[inline]
fn slot_of(width: usize, h: u64, row: usize) -> usize {
    let h1 = h as u32;
    let h2 = ((h >> 32) as u32) | 1;
    let idx = h1.wrapping_add((row as u32).wrapping_mul(h2));
    row * width + ((u64::from(idx) * width as u64) >> 32) as usize
}

/// Count–min sketch over `u32` keys (interned symbol ids) with signed
/// cells.
///
/// `depth` independent hash rows of `width` cells each; an update adds the
/// delta to one cell per row, a point query takes the minimum over rows.
/// With non-negative updates the estimate never underestimates the true
/// count, and `estimate == 0` proves the key was never added — the
/// property [`crate::quality`] uses for its new-value signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    /// 32-bit cells: counts here are window- and stream-scale (per-key
    /// saturation at `i32::MAX` is out of scope for repair telemetry),
    /// and halving the cell size halves the cache traffic of both the
    /// per-row probe path and the per-seal merge/drift/clear passes.
    cells: Vec<i32>,
}

impl CountMinSketch {
    /// Create a sketch with `depth` hash rows of `width` cells.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be nonzero");
        CountMinSketch {
            width,
            depth,
            cells: vec![0; width * depth],
        }
    }

    /// Cells per hash row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The per-key hash all rows derive from. Exposed so a hot loop
    /// touching several same-shaped sketches with one key (the quality
    /// monitor's per-row path) can mix once and reuse the result via the
    /// `*_hashed` methods.
    #[inline]
    pub fn hash_key(key: u32) -> u64 {
        splitmix64(u64::from(key))
    }

    /// Row `row`'s cell index for a pre-mixed key hash.
    #[inline]
    fn row_slot(&self, h: u64, row: usize) -> usize {
        slot_of(self.width, h, row)
    }

    /// Add `delta` to `key`'s count (negative deltas allowed — the sketch
    /// is a linear transform of the frequency vector).
    #[inline]
    pub fn add(&mut self, key: u32, delta: i64) {
        self.add_hashed(Self::hash_key(key), delta);
    }

    /// Reset every cell to zero, keeping the allocation. Window sealing
    /// rotates sketch buffers in place instead of reallocating them.
    pub fn clear(&mut self) {
        self.cells.fill(0);
    }

    /// [`CountMinSketch::add`] with the key hash precomputed by
    /// [`CountMinSketch::hash_key`].
    #[inline]
    pub fn add_hashed(&mut self, h: u64, delta: i64) {
        for row in 0..self.depth {
            let slot = self.row_slot(h, row);
            self.cells[slot] = self.cells[slot].saturating_add(delta as i32);
        }
    }

    /// Point estimate for `key`: minimum over rows. With non-negative
    /// updates this never underestimates, and zero means "never seen".
    #[inline]
    pub fn estimate(&self, key: u32) -> i64 {
        self.estimate_hashed(Self::hash_key(key))
    }

    /// [`CountMinSketch::estimate`] with the key hash precomputed by
    /// [`CountMinSketch::hash_key`].
    #[inline]
    pub fn estimate_hashed(&self, h: u64) -> i64 {
        (0..self.depth)
            .map(|row| i64::from(self.cells[self.row_slot(h, row)]))
            .min()
            .unwrap_or(0)
    }

    /// Fused hot-path update: add `delta` for a pre-hashed key while
    /// testing the same key's membership in `seen` (same dimensions
    /// required). Slots are computed once and shared — this is the
    /// quality monitor's per-(row, attribute) fast path, where the
    /// new-value probe against the cumulative bloom oracle and the
    /// pre-window count update always target identical coordinates.
    /// Returns `true` when the key is definitely absent from `seen`.
    #[inline]
    pub fn add_hashed_with_probe(&mut self, seen: &SlotBloom, h: u64, delta: i64) -> bool {
        debug_assert_eq!(
            (self.width, self.depth),
            (seen.width, seen.depth),
            "cannot combine a count-min sketch and filter of different dimensions"
        );
        // `depth` is almost always the default 2; an explicit two-slot
        // body lets the compiler schedule both independent cell updates
        // together instead of keeping a loop with a runtime trip count.
        if self.depth == 2 {
            let (s0, s1) = (self.row_slot(h, 0), self.row_slot(h, 1));
            self.cells[s0] = self.cells[s0].saturating_add(delta as i32);
            self.cells[s1] = self.cells[s1].saturating_add(delta as i32);
            (seen.words[s0 >> 6] & (1 << (s0 & 63)) == 0)
                | (seen.words[s1 >> 6] & (1 << (s1 & 63)) == 0)
        } else {
            let mut missing = false;
            for row in 0..self.depth {
                let slot = self.row_slot(h, row);
                self.cells[slot] = self.cells[slot].saturating_add(delta as i32);
                missing |= seen.words[slot >> 6] & (1 << (slot & 63)) == 0;
            }
            missing
        }
    }

    /// Point estimate over the cell-wise sum of `self` and `delta`
    /// (same dimensions required): exactly what materializing
    /// `self.merge(delta)` and estimating would return, without the
    /// allocation. The quality monitor derives post-repair estimates
    /// from the pre sketch plus a repairs-only delta sketch this way.
    pub fn merged_estimate(&self, delta: &CountMinSketch, key: u32) -> i64 {
        assert_eq!(
            (self.width, self.depth),
            (delta.width, delta.depth),
            "cannot combine count-min sketches of different dimensions"
        );
        let h = Self::hash_key(key);
        (0..self.depth)
            .map(|row| {
                let slot = self.row_slot(h, row);
                i64::from(self.cells[slot]) + i64::from(delta.cells[slot])
            })
            .min()
            .unwrap_or(0)
    }

    /// Total weight added (sum of one hash row; every row sums to the
    /// same total).
    pub fn total(&self) -> i64 {
        self.cells[..self.width].iter().map(|&v| i64::from(v)).sum()
    }

    /// Merge `other` into `self` cell-wise. Both sketches must have the
    /// same dimensions (they hash identically, so merged estimates equal
    /// estimates over the concatenated streams).
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert_eq!(
            (self.width, self.depth),
            (other.width, other.depth),
            "cannot merge count-min sketches of different dimensions"
        );
        for (a, b) in self.cells.iter_mut().zip(&other.cells) {
            *a = a.saturating_add(*b);
        }
    }

    /// L1-style distance between two same-shaped sketches: for each hash
    /// row, sum the absolute cell differences; return the maximum over
    /// rows. Collisions only ever *cancel* differences, so every row is a
    /// lower bound on the true L1 distance between the underlying
    /// frequency vectors and the max is the tightest of them. The result
    /// is bounded by `self.total() + other.total()` for non-negative
    /// sketches, which is how [`crate::quality`] normalizes drift to
    /// `[0, 1]`.
    pub fn l1_distance(&self, other: &CountMinSketch) -> u64 {
        assert_eq!(
            (self.width, self.depth),
            (other.width, other.depth),
            "cannot compare count-min sketches of different dimensions"
        );
        self.cells
            .chunks_exact(self.width)
            .zip(other.cells.chunks_exact(self.width))
            .map(|(a, b)| {
                a.iter()
                    .zip(b)
                    .map(|(x, y)| u64::from(x.abs_diff(*y)))
                    .sum::<u64>()
            })
            .max()
            .unwrap_or(0)
    }

    /// Sparse JSON encoding: dimensions plus `[flat_index, value]` pairs
    /// for nonzero cells, in index order (byte-deterministic).
    pub fn to_json(&self) -> Json {
        let cells: Vec<Json> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0)
            .map(|(i, v)| Json::Arr(vec![Json::Int(i as i64), Json::Int(i64::from(*v))]))
            .collect();
        Json::obj([
            ("cells", Json::Arr(cells)),
            ("depth", Json::Int(self.depth as i64)),
            ("width", Json::Int(self.width as i64)),
        ])
    }

    /// Inverse of [`CountMinSketch::to_json`].
    pub fn from_json(json: &Json) -> Option<Self> {
        let width = json.get("width")?.as_i64()? as usize;
        let depth = json.get("depth")?.as_i64()? as usize;
        if width == 0 || depth == 0 {
            return None;
        }
        let mut sketch = CountMinSketch::new(width, depth);
        for pair in json.get("cells")?.as_arr()? {
            let pair = pair.as_arr()?;
            let idx = pair.first()?.as_i64()? as usize;
            if idx >= sketch.cells.len() {
                return None;
            }
            let value = pair.get(1)?.as_i64()?;
            sketch.cells[idx] = i32::try_from(value).ok()?;
        }
        Some(sketch)
    }
}

/// Membership companion to [`CountMinSketch`]: one bit per cell, over
/// the *same* double-hashed slot discipline.
///
/// A key "is contained" when every one of its `depth` slot bits is set —
/// exactly when a count–min sketch holding the same insertions would
/// give a nonzero estimate (same slots, zero vs nonzero per cell), so a
/// bloom probe answers "was this key ever added?" with identical
/// false-positive behavior at 1/32 the memory of 32-bit cells. The
/// quality monitor's cumulative "seen before" oracle only ever asks that
/// zero-vs-nonzero question, which keeps the whole oracle cache-resident
/// on the per-row hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotBloom {
    width: usize,
    depth: usize,
    words: Vec<u64>,
}

impl SlotBloom {
    /// Create a filter with `depth` hash rows of `width` bits each.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "filter dimensions must be nonzero");
        SlotBloom {
            width,
            depth,
            words: vec![0; (width * depth).div_ceil(64)],
        }
    }

    /// Bits per hash row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Reset every bit, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Insert a key by pre-mixed hash (see [`CountMinSketch::hash_key`]).
    #[inline]
    pub fn insert_hashed(&mut self, h: u64) {
        for row in 0..self.depth {
            let slot = slot_of(self.width, h, row);
            self.words[slot >> 6] |= 1 << (slot & 63);
        }
    }

    /// Whether every slot bit for the pre-mixed hash is set. `false`
    /// proves the key was never inserted; `true` can be a collision with
    /// the same probability that the matching count–min estimate would
    /// be spuriously nonzero.
    #[inline]
    pub fn contains_hashed(&self, h: u64) -> bool {
        (0..self.depth).all(|row| {
            let slot = slot_of(self.width, h, row);
            self.words[slot >> 6] & (1 << (slot & 63)) != 0
        })
    }

    /// Set the slot bit for every nonzero cell of `counts` (same
    /// dimensions required): the seal-time "merge" that folds a window's
    /// count sketch into the cumulative membership oracle.
    pub fn absorb(&mut self, counts: &CountMinSketch) {
        assert_eq!(
            (self.width, self.depth),
            (counts.width, counts.depth),
            "cannot absorb a count-min sketch of different dimensions"
        );
        // Branchless, one output word per 64 cells: nonzero-ness has no
        // useful branch pattern mid-window, so a compare-and-pack beats
        // a predicated store.
        for (word, chunk) in self.words.iter_mut().zip(counts.cells.chunks(64)) {
            let mut bits = 0u64;
            for (i, cell) in chunk.iter().enumerate() {
                bits |= u64::from(*cell != 0) << i;
            }
            *word |= bits;
        }
    }
}

/// Register-based approximate distinct counter (HyperLogLog-style).
///
/// Each key hashes to one of `m` registers and a trailing-zero rank; the
/// register keeps the max rank seen. Registers depend only on the *set*
/// of inserted keys, so insertion order is irrelevant and merging is
/// register-wise max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistinctCounter {
    /// log2 of the register count.
    bits: u32,
    regs: Vec<u8>,
}

impl DistinctCounter {
    /// Create a counter with `2^bits` registers (`bits` in `4..=16`;
    /// 6 bits = 64 registers ≈ 13% standard error, plenty for
    /// per-window attribute cardinalities).
    pub fn new(bits: u32) -> Self {
        assert!((4..=16).contains(&bits), "register bits must be in 4..=16");
        DistinctCounter {
            bits,
            regs: vec![0; 1 << bits],
        }
    }

    /// Register count.
    pub fn registers(&self) -> usize {
        self.regs.len()
    }

    /// Reset every register, keeping the allocation.
    pub fn clear(&mut self) {
        self.regs.fill(0);
    }

    /// Observe `key`. Idempotent: re-inserting never changes the state.
    #[inline]
    pub fn insert(&mut self, key: u32) {
        self.insert_hashed(splitmix64(u64::from(key) ^ DISTINCT_SEED));
    }

    /// [`DistinctCounter::insert`] with a pre-mixed key hash. The caller
    /// owns the hashing discipline: the same key must always arrive as
    /// the same hash (idempotence), and hashes must be well-mixed. The
    /// quality monitor reuses [`CountMinSketch::hash_key`] here so each
    /// (row, attribute) pays for one mix, not two.
    #[inline]
    pub fn insert_hashed(&mut self, h: u64) {
        let idx = (h & ((1u64 << self.bits) - 1)) as usize;
        let rest = h >> self.bits;
        let rank = (rest.trailing_zeros() + 1).min(64 - self.bits) as u8;
        if rank > self.regs[idx] {
            self.regs[idx] = rank;
        }
    }

    /// Approximate number of distinct keys inserted, with the standard
    /// linear-counting correction for the small range.
    pub fn estimate(&self) -> f64 {
        let m = self.regs.len() as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        // 2^-r assembled directly from the exponent bits (bit-exact with
        // `2f64.powi(-r)`, without its multiply loop); ranks are capped at
        // `64 - bits` ≤ 60, so the exponent never leaves normal range.
        let sum: f64 = self
            .regs
            .iter()
            .map(|&r| f64::from_bits((1023 - u64::from(r)) << 52))
            .sum();
        let raw = alpha * m * m / sum;
        let zeros = self.regs.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// [`DistinctCounter::estimate`] rounded to an integer (the form
    /// reported in window summaries).
    pub fn estimate_u64(&self) -> u64 {
        self.estimate().round() as u64
    }

    /// Merge `other` into `self` (register-wise max); the result equals a
    /// counter fed the union of both key sets.
    pub fn merge(&mut self, other: &DistinctCounter) {
        assert_eq!(
            self.bits, other.bits,
            "cannot merge distinct counters of different register counts"
        );
        for (a, b) in self.regs.iter_mut().zip(&other.regs) {
            *a = (*a).max(*b);
        }
    }

    /// Dense JSON encoding (registers are one byte each and the counter
    /// is small by construction).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bits", Json::Int(i64::from(self.bits))),
            (
                "regs",
                Json::Arr(self.regs.iter().map(|&r| Json::Int(i64::from(r))).collect()),
            ),
        ])
    }

    /// Inverse of [`DistinctCounter::to_json`].
    pub fn from_json(json: &Json) -> Option<Self> {
        let bits = json.get("bits")?.as_i64()? as u32;
        if !(4..=16).contains(&bits) {
            return None;
        }
        let regs = json.get("regs")?.as_arr()?;
        if regs.len() != 1 << bits {
            return None;
        }
        let mut counter = DistinctCounter::new(bits);
        for (slot, r) in counter.regs.iter_mut().zip(regs) {
            *slot = r.as_i64()? as u8;
        }
        Some(counter)
    }
}

// Domain-separation seeds: the distinct counter and the reservoir must
// not hash in the same stream as the count-min rows.
const DISTINCT_SEED: u64 = 0xd15c_0437_5eed_0001;
const RESERVOIR_SEED: u64 = 0x0bad_cafe_dead_beef;

/// Deterministic reservoir sample of `u32` keys (algorithm R with a
/// seeded [`splitmix64`] stream): every element of the stream ends up in
/// the sample with probability `cap / seen`, and two identical streams
/// produce identical samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    state: u64,
    items: Vec<u32>,
}

impl Reservoir {
    /// Create a reservoir holding at most `cap` items.
    pub fn new(cap: usize) -> Self {
        Reservoir {
            cap,
            seen: 0,
            state: RESERVOIR_SEED,
            items: Vec::with_capacity(cap),
        }
    }

    /// Reset to the empty, freshly-seeded state, keeping the
    /// allocation. A cleared reservoir samples exactly like a new one.
    pub fn clear(&mut self) {
        self.seen = 0;
        self.state = RESERVOIR_SEED;
        self.items.clear();
    }

    /// Stream length observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current sample, in replacement order (not sorted).
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    /// Current sample sorted ascending — the deterministic rendering used
    /// in snapshots.
    pub fn sorted_items(&self) -> Vec<u32> {
        let mut v = self.items.clone();
        v.sort_unstable();
        v
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64(self.state)
    }

    /// Advance the sampling stream by one element and return the slot
    /// the element lands in (`None`: not sampled). The decision depends
    /// only on `(cap, seed, seen)` — never on the values — so parallel
    /// reservoirs that observe exactly one element per tick (e.g. one
    /// per attribute per row) can share a single decision stream and pay
    /// for one random draw per tick instead of one per reservoir, with
    /// byte-identical samples.
    #[inline]
    pub fn step(&mut self) -> Option<usize> {
        self.seen += 1;
        if self.cap == 0 {
            None
        } else if self.seen <= self.cap as u64 {
            Some((self.seen - 1) as usize)
        } else {
            // Multiply-shift range reduction (Lemire): a uniform draw
            // from `0..seen` without the hardware division `% seen`
            // costs on the per-row hot path.
            let j = ((u128::from(self.next_rand()) * u128::from(self.seen)) >> 64) as usize;
            (j < self.cap).then_some(j)
        }
    }

    /// Observe one stream element.
    #[inline]
    pub fn push(&mut self, value: u32) {
        if let Some(slot) = self.step() {
            if slot < self.items.len() {
                self.items[slot] = value;
            } else {
                self.items.push(value);
            }
        }
    }

    /// Fold `other`'s sample into `self` by replaying its sampled items
    /// (an order-dependent approximation of sampling the concatenated
    /// stream; exact whenever `other` is below capacity).
    pub fn merge(&mut self, other: &Reservoir) {
        let skipped = other.seen - other.items.len() as u64;
        for &v in &other.items {
            self.push(v);
        }
        self.seen += skipped;
    }

    /// JSON encoding: capacity, stream length, and the sorted sample.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("cap", Json::Int(self.cap as i64)),
            (
                "items",
                Json::Arr(
                    self.sorted_items()
                        .into_iter()
                        .map(|v| Json::Int(i64::from(v)))
                        .collect(),
                ),
            ),
            ("seen", Json::Int(self.seen as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_min_exact_on_small_streams() {
        let mut cm = CountMinSketch::new(128, 4);
        for key in 0..10u32 {
            for _ in 0..=key {
                cm.add(key, 1);
            }
        }
        for key in 0..10u32 {
            assert_eq!(cm.estimate(key), i64::from(key) + 1);
        }
        assert_eq!(cm.estimate(999), 0, "unseen key must estimate zero");
        assert_eq!(cm.total(), 55);
    }

    #[test]
    fn count_min_never_underestimates() {
        let mut cm = CountMinSketch::new(16, 3);
        let mut truth = std::collections::HashMap::new();
        for i in 0..500u32 {
            let key = splitmix64(u64::from(i)) as u32 % 64;
            cm.add(key, 1);
            *truth.entry(key).or_insert(0i64) += 1;
        }
        for (key, count) in truth {
            assert!(cm.estimate(key) >= count);
        }
    }

    #[test]
    fn count_min_is_linear_under_subtraction() {
        let mut cm = CountMinSketch::new(64, 4);
        cm.add(7, 5);
        cm.add(7, -2);
        assert_eq!(cm.estimate(7), 3);
    }

    #[test]
    fn count_min_merge_equals_concatenated_stream() {
        let mut a = CountMinSketch::new(64, 4);
        let mut b = CountMinSketch::new(64, 4);
        let mut both = CountMinSketch::new(64, 4);
        for i in 0..100u32 {
            let (sketch, key) = if i % 2 == 0 {
                (&mut a, i)
            } else {
                (&mut b, i / 3)
            };
            sketch.add(key, 1);
            both.add(key, 1);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn slot_bloom_matches_count_min_zero_vs_nonzero() {
        // The bloom answers exactly the question "would a count-min
        // estimate over the same slots be nonzero?" — for every key,
        // inserted or not.
        let mut cm = CountMinSketch::new(64, 2);
        let mut bloom = SlotBloom::new(64, 2);
        for i in 0..40u32 {
            let key = i * 13;
            cm.add(key, 1);
            bloom.insert_hashed(CountMinSketch::hash_key(key));
        }
        for key in 0..600u32 {
            let h = CountMinSketch::hash_key(key);
            assert_eq!(
                bloom.contains_hashed(h),
                cm.estimate_hashed(h) != 0,
                "bloom and count-min disagree on key {key}"
            );
        }
    }

    #[test]
    fn slot_bloom_absorb_equals_inserting_the_sketch_keys() {
        let mut cm = CountMinSketch::new(64, 2);
        let mut direct = SlotBloom::new(64, 2);
        for key in [3u32, 99, 250, 251, 1000] {
            cm.add(key, 2);
            direct.insert_hashed(CountMinSketch::hash_key(key));
        }
        let mut absorbed = SlotBloom::new(64, 2);
        absorbed.absorb(&cm);
        assert_eq!(absorbed, direct);
        absorbed.clear();
        assert_eq!(absorbed, SlotBloom::new(64, 2));
    }

    #[test]
    fn l1_distance_zero_on_identical_and_maximal_on_disjoint() {
        let mut a = CountMinSketch::new(256, 4);
        let mut b = CountMinSketch::new(256, 4);
        for i in 0..50u32 {
            a.add(i, 1);
            b.add(i, 1);
        }
        assert_eq!(a.l1_distance(&b), 0);
        let mut c = CountMinSketch::new(256, 4);
        for i in 1000..1050u32 {
            c.add(i, 1);
        }
        let d = a.l1_distance(&c);
        assert!(d > 0 && d <= 100, "disjoint distance {d} bounded by totals");
    }

    #[test]
    fn count_min_json_round_trip() {
        let mut cm = CountMinSketch::new(32, 2);
        cm.add(3, 4);
        cm.add(17, 1);
        let json = cm.to_json();
        let back = CountMinSketch::from_json(&json).unwrap();
        assert_eq!(back, cm);
        // Serialization itself is byte-deterministic.
        assert_eq!(json.to_string(), cm.to_json().to_string());
    }

    #[test]
    fn distinct_counter_tracks_cardinality() {
        let mut dc = DistinctCounter::new(6);
        for i in 0..1000u32 {
            dc.insert(i);
        }
        let est = dc.estimate();
        assert!(
            (700.0..=1300.0).contains(&est),
            "estimate {est} too far from 1000"
        );
        // Idempotent: re-inserting the same keys changes nothing.
        let before = dc.clone();
        for i in 0..1000u32 {
            dc.insert(i);
        }
        assert_eq!(dc, before);
    }

    #[test]
    fn distinct_counter_small_range_is_tight() {
        let mut dc = DistinctCounter::new(6);
        for i in 0..8u32 {
            dc.insert(i);
        }
        let est = dc.estimate_u64();
        assert!((6..=10).contains(&est), "small-range estimate {est}");
    }

    #[test]
    fn distinct_counter_merge_is_union() {
        let mut a = DistinctCounter::new(6);
        let mut b = DistinctCounter::new(6);
        let mut union = DistinctCounter::new(6);
        for i in 0..300u32 {
            a.insert(i);
            union.insert(i);
        }
        for i in 200..500u32 {
            b.insert(i);
            union.insert(i);
        }
        a.merge(&b);
        assert_eq!(a, union);
    }

    #[test]
    fn distinct_counter_json_round_trip() {
        let mut dc = DistinctCounter::new(4);
        for i in 0..20u32 {
            dc.insert(i * 7);
        }
        let back = DistinctCounter::from_json(&dc.to_json()).unwrap();
        assert_eq!(back, dc);
    }

    #[test]
    fn reservoir_exact_below_capacity_and_bounded_above() {
        let mut r = Reservoir::new(4);
        for v in [9u32, 7, 8] {
            r.push(v);
        }
        assert_eq!(r.sorted_items(), vec![7, 8, 9]);
        for v in 0..100u32 {
            r.push(v);
        }
        assert_eq!(r.items().len(), 4);
        assert_eq!(r.seen(), 103);
    }

    #[test]
    fn reservoir_is_deterministic() {
        let run = || {
            let mut r = Reservoir::new(8);
            for v in 0..1000u32 {
                r.push(v.wrapping_mul(2654435761) % 512);
            }
            r.sorted_items()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reservoir_merge_preserves_stream_length() {
        let mut a = Reservoir::new(4);
        let mut b = Reservoir::new(4);
        for v in 0..10u32 {
            a.push(v);
        }
        for v in 10..30u32 {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a.seen(), 30);
        assert_eq!(a.items().len(), 4);
    }
}
