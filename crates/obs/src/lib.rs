//! # obs — observability for the fixing-rules repair stack
//!
//! A zero-dependency (std-only) measurement layer:
//!
//! * [`MetricsRegistry`] — named lock-free [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed [`Histogram`]s (p50/p95/p99), plus RAII [`SpanTimer`]s
//!   for scoped stage timing ([`metrics`]);
//! * [`RepairObserver`] — hook points called from the repair pipeline
//!   (`cRepair` chase rounds, `lRepair` inverted-list probes, parallel
//!   worker accounting, stream throughput, consistency pair checks), with
//!   a [`NoopObserver`] default that monomorphizes to nothing
//!   ([`observer`]);
//! * [`Json`] — a small self-contained JSON value for deterministic
//!   snapshot export and parsing ([`json`]);
//! * [`TraceJournal`] — an append-only structured event journal
//!   (`span_begin`/`span_end`/`event` records) with byte-deterministic
//!   JSONL output and a Chrome trace-event converter ([`trace`]);
//! * structured `key=value` stderr logging behind a global level
//!   ([`log`], [`info!`], [`debug!`]);
//! * [`AttributionObserver`] — per-rule attribution over labeled series
//!   (`repair.rule.applied{attr="city",rule="r3"}`), with a ranked
//!   [`AttributionProfile`] report ([`attribution`]);
//! * Prometheus text-format v0.0.4 exposition over any snapshot plus a
//!   matching validator parser ([`expose`]), and a std-only HTTP/1.1
//!   scrape endpoint serving `GET /metrics`, `/metrics.json`, and
//!   `/healthz` from a live registry ([`serve`]);
//! * shared hand-rolled HTTP/1.1 plumbing — request parsing, response
//!   writing, a one-shot client — used by the scrape endpoint and the
//!   `fixd` repair daemon ([`http`]);
//! * [`HealthEvaluator`] — a rolling window of request outcomes judged
//!   against error-rate and p99-latency SLO thresholds, the readiness
//!   signal behind `fixd`'s `GET /readyz` ([`health`]);
//! * streaming sketches — mergeable, deterministic [`CountMinSketch`],
//!   [`DistinctCounter`], and [`Reservoir`] summaries ([`sketch`]) — and
//!   the [`QualityMonitor`] built on them: tumbling row windows scoring
//!   per-attribute repair rate, new-value ratio, and frequency drift,
//!   with [`AlertRule`] thresholds feeding `quality.alert{attr,signal}`
//!   counters and `fixd`'s quality gate ([`quality`]).
//!
//! The paper's evaluation (§7) is entirely about measured behavior —
//! repair counts and wall-clock scaling of `cRepair` vs `lRepair` — and
//! this crate is what makes those measurements visible outside of
//! one-off experiment code: `fixctl ... --metrics out.json` dumps a
//! [`MetricsRegistry::snapshot`], and the bench harness writes the same
//! shape per stage.
//!
//! # Example
//!
//! ```
//! use obs::{MetricsRegistry, MetricsObserver, RepairObserver};
//!
//! let registry = MetricsRegistry::new();
//! let observer = MetricsObserver::new(&registry);
//! {
//!     let _span = registry.span("stage.index_build");
//!     // ... build the index ...
//! }
//! observer.rule_applied(0, 2);
//! observer.tuple_done(1, 1);
//! let snapshot = registry.snapshot(); // deterministic JSON
//! assert_eq!(
//!     snapshot.get("counters").unwrap().get("repair.rules_applied").unwrap().as_i64(),
//!     Some(1),
//! );
//! assert!(snapshot.get("histograms").unwrap().get("stage.index_build_ns").is_some());
//! ```

pub mod attribution;
pub mod expose;
pub mod health;
pub mod http;
pub mod json;
pub mod log;
pub mod metrics;
pub mod observer;
pub mod quality;
pub mod serve;
pub mod sketch;
pub mod trace;

pub use attribution::{AttributionObserver, AttributionProfile, ProfileRow, RuleLabel};
pub use expose::{parse_label_pairs, parse_prometheus, prometheus_text, PromSample};
pub use health::{HealthEvaluator, HealthReport, SloConfig};
pub use http::{http_get, http_post, http_request, http_request_with_headers, HttpResponse};
pub use json::Json;
pub use log::Level;
pub use metrics::{series_key, Counter, Gauge, Histogram, MetricsRegistry, SpanTimer};
pub use observer::{CellFix, MetricsObserver, NoopObserver, RepairObserver, Tee, METRIC_NAMES};
pub use quality::{
    render_snapshot, AlertEvent, AlertRule, AttrSummary, QualityConfig, QualityMonitor, Signal,
    WindowSummary,
};
pub use serve::MetricsServer;
pub use sketch::{CountMinSketch, DistinctCounter, Reservoir, SlotBloom};
pub use trace::{TraceClock, TraceJournal, TracePhase, TraceRecord};
