//! Hand-rolled HTTP/1.1 plumbing shared by every in-repo endpoint.
//!
//! One implementation of request parsing, response writing, and a minimal
//! client, used by both the [`crate::serve::MetricsServer`] scrape
//! endpoint and the `fixd` repair daemon — the same dep-free discipline as
//! the workspace shims, factored out so the socket code exists exactly
//! once.
//!
//! Scope is deliberately small: `HTTP/1.1`, `Connection: close`, no
//! keep-alive, no TLS, no chunked transfer encoding. Request bodies are
//! read per `Content-Length` (bounded by [`MAX_BODY`]); heads are bounded
//! by [`MAX_HEAD`].

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum accepted request-head size (request line + headers).
pub const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request/response body size.
pub const MAX_BODY: usize = 64 * 1024 * 1024;

/// A parsed HTTP/1.1 request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, ...).
    pub method: String,
    /// Path with the query string stripped.
    pub path: String,
    /// Query string after `?`, or `""`.
    pub query: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Read and parse one request from `stream`: head until `\r\n\r\n`,
    /// then `Content-Length` body bytes. Applies 5-second read timeouts.
    pub fn read_from(stream: &mut TcpStream) -> io::Result<Request> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;

        let mut buf = Vec::with_capacity(512);
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(i) = find_head_end(&buf) {
                break i;
            }
            if buf.len() > MAX_HEAD {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request head too large",
                ));
            }
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-head",
                ));
            }
            buf.extend_from_slice(&chunk[..n]);
        };

        let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or_default().to_ascii_uppercase();
        let target = parts.next().unwrap_or_default();
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (target.to_string(), String::new()),
        };
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            if let Some((k, v)) = line.split_once(':') {
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }

        let content_length: usize = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(0);
        if content_length > MAX_BODY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request body too large",
            ));
        }
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(content_length);

        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
        })
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// A response ready to serialize: status code, content type, body, plus
/// any extra headers (e.g. `X-Trace-Id`).
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: String,
    /// Body bytes.
    pub body: Vec<u8>,
    /// Extra headers appended verbatim after the standard set.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A response with no extra headers.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            content_type: content_type.to_string(),
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "text/plain", body.into().into_bytes())
    }

    /// A `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response::new(status, "application/json", body.into().into_bytes())
    }

    /// Append an extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize onto `stream` as `HTTP/1.1` with `Connection: close`.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        for (k, v) in &self.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this workspace emits.
pub fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A fetched HTTP response: status, headers (lowercased names), body.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Body as text.
    pub body: String,
}

impl HttpResponse {
    /// First value of header `name` (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Minimal one-shot HTTP client: send `method` to `http://host:port/path`
/// with an optional body, return the parsed response. Used by
/// `fixctl scrape`/`fixctl client` and the tests — not a general client.
pub fn http_request(
    method: &str,
    url: &str,
    content_type: &str,
    body: &[u8],
) -> io::Result<HttpResponse> {
    http_request_with_headers(method, url, content_type, body, &[])
}

/// [`http_request`] plus caller-supplied request headers (`(name, value)`
/// pairs appended verbatim) — how a client hands `fixd` an `X-Trace-Id`
/// to correlate its own logs with the daemon journal.
pub fn http_request_with_headers(
    method: &str,
    url: &str,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> io::Result<HttpResponse> {
    let rest = url.strip_prefix("http://").ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "only http:// URLs supported")
    })?;
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let mut stream = TcpStream::connect(host)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n");
    if !body.is_empty() || method == "POST" {
        head.push_str(&format!(
            "Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let response = String::from_utf8_lossy(&response).into_owned();
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response"))?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap_or_default()
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// Fetch `url` with GET, returning `(status, body)`.
pub fn http_get(url: &str) -> io::Result<(u16, String)> {
    let r = http_request("GET", url, "text/plain", &[])?;
    Ok((r.status, r.body))
}

/// POST `body` to `url`, returning the full response (the daemon replies
/// with an `X-Trace-Id` header callers want to read).
pub fn http_post(url: &str, content_type: &str, body: &[u8]) -> io::Result<HttpResponse> {
    http_request("POST", url, content_type, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// One-shot echo server: accepts a single connection, parses the
    /// request, and answers with a JSON description of what it saw.
    fn spawn_echo() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = Request::read_from(&mut stream).unwrap();
            let body = format!(
                "{{\"method\":\"{}\",\"path\":\"{}\",\"query\":\"{}\",\"len\":{}}}",
                req.method,
                req.path,
                req.query,
                req.body.len()
            );
            Response::json(200, body)
                .with_header("X-Echo", "yes")
                .write_to(&mut stream)
                .unwrap();
        });
        (addr, handle)
    }

    #[test]
    fn round_trips_get_with_query() {
        let (addr, handle) = spawn_echo();
        let (status, body) = http_get(&format!("http://{addr}/metrics?foo=1")).unwrap();
        handle.join().unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"path\":\"/metrics\""), "{body}");
        assert!(body.contains("\"query\":\"foo=1\""), "{body}");
    }

    #[test]
    fn round_trips_post_body_and_extra_headers() {
        let (addr, handle) = spawn_echo();
        let payload = vec![b'x'; 10_000];
        let resp = http_post(&format!("http://{addr}/repair"), "text/csv", &payload).unwrap();
        handle.join().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-echo"), Some("yes"));
        assert!(resp.body.contains("\"len\":10000"), "{}", resp.body);
        assert!(resp.body.contains("\"method\":\"POST\""), "{}", resp.body);
    }

    #[test]
    fn rejects_oversized_head() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let huge = format!(
                "GET /x HTTP/1.1\r\nX-Big: {}\r\n\r\n",
                "a".repeat(MAX_HEAD * 2)
            );
            let _ = s.write_all(huge.as_bytes());
            let _ = s.flush();
            // Keep the connection open until the server has parsed.
            let mut buf = [0u8; 16];
            let _ = s.read(&mut buf);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let err = Request::read_from(&mut stream).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Close the server side so the client's read unblocks before join.
        drop(stream);
        client.join().unwrap();
    }

    #[test]
    fn status_texts_cover_emitted_codes() {
        for code in [200u16, 202, 400, 404, 405, 413, 500, 503] {
            assert_ne!(status_text(code), "Unknown", "{code}");
        }
    }
}
