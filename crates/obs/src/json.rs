//! A minimal JSON value: build, serialize, parse.
//!
//! The workspace is offline (no `serde_json`), and the observability layer
//! needs a stable machine-readable export format, so this module carries a
//! small self-contained JSON implementation. Objects are ordered
//! [`BTreeMap`]s, which makes every serialization deterministic — snapshot
//! diffing and golden tests rely on that.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (counters can exceed `f64`'s 2^53 mantissa).
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Insert or overwrite a member. Non-object values (including `Null`)
    /// are replaced by a fresh object first, so documents can be built up
    /// from `Json::Null`.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) {
        if !matches!(self, Json::Obj(_)) {
            *self = Json::Obj(BTreeMap::new());
        }
        if let Json::Obj(map) = self {
            map.insert(key.into(), value.into());
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Integer accessor (accepts integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            Json::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Float accessor (accepts integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean accessor.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object accessor.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Pretty serialization (2-space indent). Compact serialization is the
    /// `Display` impl (`to_string()`).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // Keep floats round-trippable and never bare-integer
                    // formatted, so parsers see an unambiguous float.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Counters beyond i64::MAX are unreachable in practice; saturate
        // rather than wrap if one ever appears.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure located by byte offset *and* line/column, so malformed
/// metrics or trace files point straight at the offending spot in an
/// editor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// 1-based line of the offset (newlines counted as `\n`).
    pub line: usize,
    /// 1-based column of the offset, in bytes from the line start.
    pub col: usize,
    /// What was expected.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {} (byte {}): {}",
            self.line, self.col, self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        // Errors are the cold path; scanning the prefix for the line and
        // column only happens when parsing already failed.
        let upto = self.pos.min(self.bytes.len());
        let line = 1 + self.bytes[..upto].iter().filter(|&&b| b == b'\n').count();
        let line_start = self.bytes[..upto]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        ParseError {
            offset: self.pos,
            line,
            col: upto - line_start + 1,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let hex2 = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| self.err("truncated \\u escape"))?;
                                let low = u32::from_str_radix(
                                    std::str::from_utf8(hex2)
                                        .map_err(|_| self.err("bad \\u escape"))?,
                                    16,
                                )
                                .map_err(|_| self.err("bad \\u escape"))?;
                                self.pos += 4;
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?);
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let doc = Json::obj([
            ("name", Json::from("fixrules")),
            ("count", Json::from(42i64)),
            ("ratio", Json::from(0.5)),
            ("ok", Json::from(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::from(1i64), Json::from("two")]),
            ),
        ]);
        for text in [doc.to_string(), doc.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn serialization_is_deterministic() {
        // BTreeMap ordering: insertion order never leaks.
        let a = Json::obj([("b", Json::Int(2)), ("a", Json::Int(1))]);
        let b = Json::obj([("a", Json::Int(1)), ("b", Json::Int(2))]);
        assert_eq!(a.to_string(), b.to_string());
        assert_eq!(a.to_string(), r#"{"a":1,"b":2}"#);
    }

    #[test]
    fn escapes_round_trip() {
        let tricky = "quote \" backslash \\ newline \n tab \t unicode \u{1F600} ctrl \u{0001}";
        let doc = Json::from(tricky);
        assert_eq!(parse(&doc.to_string()).unwrap().as_str().unwrap(), tricky);
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(parse(r#""😀""#).unwrap().as_str().unwrap(), "\u{1F600}");
    }

    #[test]
    fn large_integers_stay_exact() {
        let n = (1i64 << 53) + 1;
        let doc = Json::Int(n);
        assert_eq!(parse(&doc.to_string()).unwrap().as_i64().unwrap(), n);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"oops", "{\"a\" 1}", "tru", "1 2", ""] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        // The `!` sits on line 3, column 10 of this document.
        let text = "{\n  \"a\": 1,\n  \"b\": [2!]\n}";
        let err = parse(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 10);
        assert_eq!(err.offset, text.find('!').unwrap());
        let shown = err.to_string();
        assert!(shown.contains("line 3, column 10"), "{shown}");

        // Single-line input: line 1, column = offset + 1.
        let err = parse("[1,]").unwrap_err();
        assert_eq!((err.line, err.col), (1, err.offset + 1));
    }

    #[test]
    fn floats_always_carry_a_marker() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert!(matches!(parse("2.0").unwrap(), Json::Float(_)));
        assert!(matches!(parse("2").unwrap(), Json::Int(_)));
    }
}
