//! Rolling-window SLO health: a ring buffer of recent request outcomes
//! evaluated against error-rate and tail-latency thresholds.
//!
//! A long-running repair service is *dependable* only if its health is
//! machine-checkable: the `fixd` daemon records one `(ok, latency)` sample
//! per served request into a [`HealthEvaluator`] and answers `GET /readyz`
//! from [`HealthEvaluator::report`]. The window is bounded (oldest samples
//! fall off), so a burst of failures trips the SLO quickly and recovery
//! clears it once enough healthy requests have displaced the bad ones.
//!
//! Until [`SloConfig::min_samples`] outcomes have been observed the
//! evaluator reports healthy — an idle daemon is ready, not degraded.
//!
//! # Example
//!
//! ```
//! use obs::health::{HealthEvaluator, SloConfig};
//!
//! let health = HealthEvaluator::new(SloConfig {
//!     window: 8,
//!     min_samples: 4,
//!     max_error_rate: 0.25,
//!     max_p99_ns: 1_000_000,
//!     ..SloConfig::default()
//! });
//! for _ in 0..8 {
//!     health.record(true, 1_000);
//! }
//! assert!(health.report().healthy);
//! for _ in 0..8 {
//!     health.record(false, 1_000); // displace the window with failures
//! }
//! assert!(!health.report().healthy);
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::json::Json;

/// SLO thresholds and window shape for a [`HealthEvaluator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Number of most-recent outcomes considered.
    pub window: usize,
    /// Below this many samples the evaluator reports healthy.
    pub min_samples: usize,
    /// Maximum tolerated fraction of failed requests in the window.
    pub max_error_rate: f64,
    /// Maximum tolerated p99 latency (nanoseconds) in the window.
    pub max_p99_ns: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            window: 512,
            min_samples: 20,
            max_error_rate: 0.05,
            max_p99_ns: 2_000_000_000, // 2 s
        }
    }
}

/// One recorded outcome.
#[derive(Debug, Clone, Copy)]
struct Outcome {
    ok: bool,
    latency_ns: u64,
}

/// Thread-safe rolling evaluator of request outcomes against an SLO.
#[derive(Debug)]
pub struct HealthEvaluator {
    config: SloConfig,
    ring: Mutex<VecDeque<Outcome>>,
}

/// The result of evaluating the current window; serializable via
/// [`HealthReport::to_json`] (this is the `GET /readyz` body shape).
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Samples currently in the window.
    pub samples: usize,
    /// Failed samples in the window.
    pub errors: usize,
    /// `errors / samples` (0 when empty).
    pub error_rate: f64,
    /// p99 latency over the window, nanoseconds (0 when empty).
    pub p99_ns: u64,
    /// Error-rate SLO satisfied (vacuously when under `min_samples`).
    pub error_rate_ok: bool,
    /// Latency SLO satisfied (vacuously when under `min_samples`).
    pub latency_ok: bool,
    /// Both SLOs green.
    pub healthy: bool,
    /// The thresholds the window was judged against.
    pub config: SloConfig,
}

impl HealthReport {
    /// JSON object with sorted keys (deterministic given equal state).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("error_rate", Json::from(format!("{:.4}", self.error_rate))),
            ("error_rate_ok", Json::from(self.error_rate_ok)),
            ("errors", Json::from(self.errors)),
            ("healthy", Json::from(self.healthy)),
            ("latency_ok", Json::from(self.latency_ok)),
            (
                "max_error_rate",
                Json::from(format!("{:.4}", self.config.max_error_rate)),
            ),
            ("max_p99_ns", Json::from(self.config.max_p99_ns)),
            ("p99_ns", Json::from(self.p99_ns)),
            ("samples", Json::from(self.samples)),
            ("window", Json::from(self.config.window)),
        ])
    }
}

impl HealthEvaluator {
    /// An empty evaluator. `window` is clamped to at least 1.
    pub fn new(mut config: SloConfig) -> HealthEvaluator {
        config.window = config.window.max(1);
        HealthEvaluator {
            config,
            ring: Mutex::new(VecDeque::with_capacity(config.window)),
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    /// Record one request outcome, displacing the oldest sample when the
    /// window is full.
    pub fn record(&self, ok: bool, latency_ns: u64) {
        let mut ring = self.ring.lock().unwrap();
        if ring.len() == self.config.window {
            ring.pop_front();
        }
        ring.push_back(Outcome { ok, latency_ns });
    }

    /// Evaluate the current window.
    pub fn report(&self) -> HealthReport {
        let ring = self.ring.lock().unwrap();
        let samples = ring.len();
        let errors = ring.iter().filter(|o| !o.ok).count();
        let error_rate = if samples == 0 {
            0.0
        } else {
            errors as f64 / samples as f64
        };
        let p99_ns = if samples == 0 {
            0
        } else {
            let mut lat: Vec<u64> = ring.iter().map(|o| o.latency_ns).collect();
            lat.sort_unstable();
            let rank = ((0.99 * samples as f64).ceil() as usize).clamp(1, samples);
            lat[rank - 1]
        };
        drop(ring);
        let warmed = samples >= self.config.min_samples;
        let error_rate_ok = !warmed || error_rate <= self.config.max_error_rate;
        let latency_ok = !warmed || p99_ns <= self.config.max_p99_ns;
        HealthReport {
            samples,
            errors,
            error_rate,
            p99_ns,
            error_rate_ok,
            latency_ok,
            healthy: error_rate_ok && latency_ok,
            config: self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> SloConfig {
        SloConfig {
            window: 10,
            min_samples: 5,
            max_error_rate: 0.2,
            max_p99_ns: 1000,
        }
    }

    #[test]
    fn empty_window_is_healthy() {
        let h = HealthEvaluator::new(config());
        let r = h.report();
        assert!(r.healthy);
        assert_eq!(r.samples, 0);
        assert_eq!(r.p99_ns, 0);
    }

    #[test]
    fn under_min_samples_is_vacuously_green() {
        let h = HealthEvaluator::new(config());
        for _ in 0..4 {
            h.record(false, 1_000_000); // all failing, all slow
        }
        assert!(h.report().healthy, "below min_samples must stay ready");
        h.record(false, 1_000_000);
        let r = h.report();
        assert!(!r.healthy, "at min_samples the SLO applies");
        assert!(!r.error_rate_ok);
        assert!(!r.latency_ok);
    }

    #[test]
    fn error_rate_trips_and_recovers_as_window_rolls() {
        let h = HealthEvaluator::new(config());
        for _ in 0..10 {
            h.record(true, 10);
        }
        assert!(h.report().healthy);
        // 3 failures in a window of 10 → 30% > 20%.
        for _ in 0..3 {
            h.record(false, 10);
        }
        let r = h.report();
        assert!(!r.error_rate_ok);
        assert_eq!(r.errors, 3);
        // 10 fresh successes displace every failure.
        for _ in 0..10 {
            h.record(true, 10);
        }
        assert!(h.report().healthy);
        assert_eq!(h.report().errors, 0);
    }

    #[test]
    fn p99_trips_on_tail_latency_only() {
        let h = HealthEvaluator::new(SloConfig {
            window: 100,
            min_samples: 5,
            max_error_rate: 1.0,
            max_p99_ns: 1000,
        });
        for _ in 0..99 {
            h.record(true, 10);
        }
        h.record(true, 50_000);
        let r = h.report();
        // Rank ceil(0.99·100) = 99 of 100 → still the fast bucket.
        assert_eq!(r.p99_ns, 10);
        assert!(r.healthy);
        h.record(true, 60_000); // second slow sample, window rolls to 100
        let r = h.report();
        assert_eq!(r.p99_ns, 50_000);
        assert!(!r.latency_ok);
    }

    #[test]
    fn report_json_shape() {
        let h = HealthEvaluator::new(config());
        h.record(true, 7);
        let json = h.report().to_json();
        for key in [
            "samples",
            "errors",
            "error_rate",
            "p99_ns",
            "healthy",
            "error_rate_ok",
            "latency_ok",
            "window",
            "max_p99_ns",
            "max_error_rate",
        ] {
            assert!(json.get(key).is_some(), "missing {key}");
        }
        assert_eq!(json.get("samples").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn exactly_at_ceiling_error_rate_is_still_healthy() {
        // The SLO comparison is `<=`: a window sitting *exactly* on the
        // ceiling must not flip readiness — only exceeding it does.
        let h = HealthEvaluator::new(SloConfig {
            window: 10,
            min_samples: 10,
            max_error_rate: 0.2,
            max_p99_ns: 1000,
        });
        for i in 0..10 {
            h.record(i < 8, 10); // exactly 2 failures of 10 = 20.0%
        }
        let r = h.report();
        assert_eq!(r.errors, 2);
        assert!(r.error_rate_ok, "error_rate == max_error_rate is green");
        assert!(r.healthy);
        h.record(false, 10); // displaces a success: 3 of 10 → 30% > 20%
        assert!(!h.report().error_rate_ok);
    }

    #[test]
    fn p99_with_a_single_sample_is_that_sample() {
        let h = HealthEvaluator::new(SloConfig {
            window: 10,
            min_samples: 1,
            max_error_rate: 1.0,
            max_p99_ns: 1000,
        });
        h.record(true, 999);
        let r = h.report();
        // Rank ceil(0.99·1) = 1 clamps to the only sample.
        assert_eq!(r.p99_ns, 999);
        assert!(r.latency_ok, "at-threshold single sample stays green");
        let h2 = HealthEvaluator::new(SloConfig {
            window: 10,
            min_samples: 1,
            max_error_rate: 1.0,
            max_p99_ns: 1000,
        });
        h2.record(true, 1001);
        assert!(!h2.report().latency_ok);
    }

    #[test]
    fn idle_window_never_flips_green_to_red() {
        // The readyz pin: once a window is green, the mere passage of
        // requests *not* arriving can never degrade it — the ring only
        // changes on `record`, so repeated idle evaluations are stable.
        let h = HealthEvaluator::new(config());
        for _ in 0..10 {
            h.record(true, 10);
        }
        let first = h.report();
        assert!(first.healthy);
        for _ in 0..100 {
            assert_eq!(h.report(), first, "idle re-evaluation is a fixpoint");
        }
        // Same holds for the empty post-boot window: idle from the start
        // stays vacuously green forever.
        let idle = HealthEvaluator::new(config());
        for _ in 0..100 {
            assert!(idle.report().healthy);
        }
    }

    #[test]
    fn concurrent_records_never_exceed_window() {
        let h = HealthEvaluator::new(config());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..500 {
                        h.record(i % 7 != 0, i);
                    }
                });
            }
        });
        let r = h.report();
        assert_eq!(r.samples, 10, "window stays bounded");
    }
}
