//! Structured trace journal: append-only span/event records with
//! byte-deterministic JSONL serialization and a Chrome trace-event
//! converter (viewable in Perfetto / `chrome://tracing`).
//!
//! Like the rest of this crate the journal is a leaf: callers pass names
//! and ids, never relational types. Three record phases mirror the Chrome
//! trace-event `ph` field: `"B"` (span begin), `"E"` (span end), `"i"`
//! (instant event with an attached payload object).
//!
//! Two clocks:
//!
//! * [`TraceClock::Logical`] (the default) — records carry only the
//!   monotonic sequence number, so two runs with identical behavior
//!   serialize **byte-identically**. The CI determinism gate diffs two
//!   `fixctl repair --trace` journals and relies on this.
//! * [`TraceClock::Wall`] — records additionally carry `ts_us`,
//!   microseconds since journal creation, for real timings in the Chrome
//!   converter.
//!
//! # Example
//!
//! ```
//! use obs::trace::{TraceClock, TraceJournal};
//!
//! let journal = TraceJournal::new(TraceClock::Logical);
//! {
//!     let span = journal.span("stage.repair", 0);
//!     let mut fields = obs::Json::Null;
//!     fields.set("rows", 4u64);
//!     journal.event("repair.done", span.id(), fields);
//! }
//! let text = journal.to_jsonl();
//! let records = obs::trace::parse_jsonl(&text).unwrap();
//! assert_eq!(records.len(), 3); // begin, event, end
//! let chrome = obs::trace::chrome_trace(&records);
//! assert!(chrome.get("traceEvents").is_some());
//! ```

use std::sync::Mutex;
use std::time::Instant;

use crate::json::{self, Json};

/// A fresh empty JSON object.
fn empty_obj() -> Json {
    Json::Obj(std::collections::BTreeMap::new())
}

/// Timestamp mode of a [`TraceJournal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceClock {
    /// Sequence numbers only — byte-deterministic output.
    #[default]
    Logical,
    /// Sequence numbers plus `ts_us` microseconds since journal creation.
    Wall,
}

impl std::str::FromStr for TraceClock {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "logical" => Ok(TraceClock::Logical),
            "wall" => Ok(TraceClock::Wall),
            other => Err(format!("unknown trace clock `{other}` (logical|wall)")),
        }
    }
}

/// The `ph` phase of one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span opened (`"B"`).
    SpanBegin,
    /// A span closed (`"E"`).
    SpanEnd,
    /// An instant event with a payload (`"i"`).
    Event,
}

impl TracePhase {
    /// The Chrome trace-event phase letter.
    pub fn as_str(self) -> &'static str {
        match self {
            TracePhase::SpanBegin => "B",
            TracePhase::SpanEnd => "E",
            TracePhase::Event => "i",
        }
    }

    /// Parse a phase letter.
    pub fn parse(s: &str) -> Option<TracePhase> {
        match s {
            "B" => Some(TracePhase::SpanBegin),
            "E" => Some(TracePhase::SpanEnd),
            "i" => Some(TracePhase::Event),
            _ => None,
        }
    }
}

/// One journal record. Span ids start at 1; `span`/`parent` of 0 mean
/// "none"/"root".
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Monotonic sequence number, from 0, gap-free within a journal.
    pub seq: u64,
    /// Record phase.
    pub phase: TracePhase,
    /// Span or event name.
    pub name: String,
    /// Span id for begin/end records; 0 for events.
    pub span: u64,
    /// Enclosing span id; 0 for root.
    pub parent: u64,
    /// Microseconds since journal creation ([`TraceClock::Wall`] only).
    pub ts_us: Option<u64>,
    /// Event payload; always a (possibly empty) JSON object.
    pub fields: Json,
}

impl TraceRecord {
    /// The record as one JSON object (sorted keys — deterministic bytes).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::Null;
        obj.set("fields", self.fields.clone());
        obj.set("name", self.name.as_str());
        obj.set("parent", self.parent);
        obj.set("ph", self.phase.as_str());
        obj.set("seq", self.seq);
        obj.set("span", self.span);
        if let Some(ts) = self.ts_us {
            obj.set("ts_us", ts);
        }
        obj
    }

    /// Parse one journal line back into a record.
    pub fn from_json(value: &Json) -> Result<TraceRecord, String> {
        let get_u64 = |key: &str| -> Result<u64, String> {
            value
                .get(key)
                .and_then(Json::as_i64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("trace record missing `{key}`"))
        };
        let phase = value
            .get("ph")
            .and_then(Json::as_str)
            .and_then(TracePhase::parse)
            .ok_or("trace record has no valid `ph`")?;
        let name = value
            .get("name")
            .and_then(Json::as_str)
            .ok_or("trace record has no `name`")?
            .to_string();
        Ok(TraceRecord {
            seq: get_u64("seq")?,
            phase,
            name,
            span: get_u64("span")?,
            parent: get_u64("parent")?,
            ts_us: value.get("ts_us").and_then(Json::as_i64).map(|v| v as u64),
            fields: value.get("fields").cloned().unwrap_or(Json::Null),
        })
    }
}

#[derive(Debug, Default)]
struct Inner {
    records: Vec<TraceRecord>,
    next_span: u64,
}

/// An append-only, thread-safe journal of spans and events.
#[derive(Debug)]
pub struct TraceJournal {
    inner: Mutex<Inner>,
    clock: TraceClock,
    epoch: Instant,
}

impl TraceJournal {
    /// An empty journal using `clock`.
    pub fn new(clock: TraceClock) -> TraceJournal {
        TraceJournal {
            inner: Mutex::new(Inner::default()),
            clock,
            epoch: Instant::now(),
        }
    }

    /// The journal's clock mode.
    pub fn clock(&self) -> TraceClock {
        self.clock
    }

    fn now_us(&self) -> Option<u64> {
        match self.clock {
            TraceClock::Logical => None,
            TraceClock::Wall => {
                Some(u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX))
            }
        }
    }

    fn push(&self, phase: TracePhase, name: &str, span: u64, parent: u64, fields: Json) {
        let ts_us = self.now_us();
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.records.len() as u64;
        inner.records.push(TraceRecord {
            seq,
            phase,
            name: name.to_string(),
            span,
            parent,
            ts_us,
            fields,
        });
    }

    /// Open a span under `parent` (0 = root). The returned guard closes the
    /// span on drop; use [`TraceSpan::id`] as the parent of nested records.
    pub fn span(&self, name: &str, parent: u64) -> TraceSpan<'_> {
        let id = {
            let mut inner = self.inner.lock().unwrap();
            inner.next_span += 1;
            inner.next_span
        };
        self.push(TracePhase::SpanBegin, name, id, parent, empty_obj());
        TraceSpan {
            journal: self,
            name: name.to_string(),
            id,
            parent,
        }
    }

    /// Record an instant event with a payload (`fields` should be a JSON
    /// object; anything else is wrapped under `{"value": ...}`).
    pub fn event(&self, name: &str, parent: u64, fields: Json) {
        let fields = match fields {
            obj @ Json::Obj(_) => obj,
            Json::Null => empty_obj(),
            other => Json::obj([("value", other)]),
        };
        self.push(TracePhase::Event, name, 0, parent, fields);
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all records in append order.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.inner.lock().unwrap().records.clone()
    }

    /// The journal as JSONL: one compact JSON object per line, sorted keys,
    /// trailing newline. Byte-deterministic under [`TraceClock::Logical`].
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for record in &inner.records {
            out.push_str(&record.to_json().to_string());
            out.push('\n');
        }
        out
    }
}

/// RAII guard from [`TraceJournal::span`]; emits the matching `"E"` record
/// on drop.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    journal: &'a TraceJournal,
    name: String,
    id: u64,
    parent: u64,
}

impl TraceSpan<'_> {
    /// This span's id — pass as `parent` to nest records under it.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        self.journal.push(
            TracePhase::SpanEnd,
            &self.name,
            self.id,
            self.parent,
            empty_obj(),
        );
    }
}

/// Parse a JSONL journal back into records. Blank lines are skipped; the
/// error names the offending line.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("journal line {}: {e}", i + 1))?;
        out.push(
            TraceRecord::from_json(&value).map_err(|e| format!("journal line {}: {e}", i + 1))?,
        );
    }
    Ok(out)
}

/// Convert journal records to Chrome trace-event JSON
/// (`{"displayTimeUnit": "ms", "traceEvents": [...]}`).
///
/// Span begin/end map to `"B"`/`"E"` pairs, events to `"i"` instants with
/// scope `"t"`. `ts` is `ts_us` when present (wall clock), else the
/// sequence number — logical journals still render as an ordered timeline.
pub fn chrome_trace(records: &[TraceRecord]) -> Json {
    let events: Vec<Json> = records
        .iter()
        .map(|r| {
            let mut ev = Json::Null;
            ev.set("args", r.fields.clone());
            ev.set("name", r.name.as_str());
            ev.set("ph", r.phase.as_str());
            ev.set("pid", 1u64);
            ev.set("tid", 1u64);
            ev.set("ts", r.ts_us.unwrap_or(r.seq));
            if r.phase == TracePhase::Event {
                ev.set("s", "t");
            }
            ev
        })
        .collect();
    let mut root = Json::Null;
    root.set("displayTimeUnit", "ms");
    root.set("traceEvents", Json::Arr(events));
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> TraceJournal {
        let journal = TraceJournal::new(TraceClock::Logical);
        let outer = journal.span("stage.repair", 0);
        let mut fields = Json::Null;
        fields.set("row", 1u64);
        fields.set("attr", "capital");
        journal.event("repair.cell", outer.id(), fields);
        drop(outer);
        journal
    }

    #[test]
    fn logical_journal_is_byte_deterministic() {
        let a = sample_journal().to_jsonl();
        let b = sample_journal().to_jsonl();
        assert_eq!(a, b);
        assert!(!a.contains("ts_us"), "{a}");
    }

    #[test]
    fn wall_clock_stamps_microseconds() {
        let journal = TraceJournal::new(TraceClock::Wall);
        journal.event("e", 0, empty_obj());
        let records = journal.records();
        assert!(records[0].ts_us.is_some());
        assert!(journal.to_jsonl().contains("ts_us"));
    }

    #[test]
    fn jsonl_round_trips() {
        let journal = sample_journal();
        let text = journal.to_jsonl();
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed, journal.records());
        // begin(seq 0) → event(seq 1) → end(seq 2), ids/parents intact.
        assert_eq!(parsed[0].phase, TracePhase::SpanBegin);
        assert_eq!(parsed[1].phase, TracePhase::Event);
        assert_eq!(parsed[1].parent, parsed[0].span);
        assert_eq!(parsed[2].phase, TracePhase::SpanEnd);
        assert_eq!(parsed[2].span, parsed[0].span);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("not json\n").is_err());
        assert!(parse_jsonl("{\"seq\": 0}\n").is_err(), "missing ph");
    }

    #[test]
    fn spans_nest_and_count() {
        let journal = TraceJournal::new(TraceClock::Logical);
        {
            let outer = journal.span("outer", 0);
            let inner = journal.span("inner", outer.id());
            assert_ne!(outer.id(), inner.id());
        }
        let records = journal.records();
        assert_eq!(records.len(), 4);
        // inner closes before outer (drop order).
        assert_eq!(records[2].name, "inner");
        assert_eq!(records[3].name, "outer");
        assert_eq!(records[1].parent, records[0].span);
    }

    #[test]
    fn non_object_event_fields_are_wrapped() {
        let journal = TraceJournal::new(TraceClock::Logical);
        journal.event("e", 0, Json::from(7u64));
        let records = journal.records();
        assert_eq!(
            records[0].fields.get("value").and_then(Json::as_i64),
            Some(7)
        );
    }

    /// Golden test pinning the exact Chrome trace-event bytes for a small
    /// logical journal — the `fixctl trace export --chrome` contract.
    #[test]
    fn chrome_export_golden() {
        let journal = sample_journal();
        let chrome = chrome_trace(&journal.records());
        let expected = concat!(
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
            "{\"args\":{},\"name\":\"stage.repair\",\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":0},",
            "{\"args\":{\"attr\":\"capital\",\"row\":1},\"name\":\"repair.cell\",",
            "\"ph\":\"i\",\"pid\":1,\"s\":\"t\",\"tid\":1,\"ts\":1},",
            "{\"args\":{},\"name\":\"stage.repair\",\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":2}",
            "]}"
        );
        assert_eq!(chrome.to_string(), expected);
        // And it parses back as valid JSON with balanced B/E phases.
        let reparsed = json::parse(&chrome.to_string()).unwrap();
        let events = reparsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        let begins = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
            .count();
        let ends = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("E"))
            .count();
        assert_eq!(begins, ends);
    }

    /// The daemon thread-pool contract: concurrent appends of nested
    /// spans and events from many threads must still serialize to a
    /// parseable JSONL journal with gap-free monotone logical clocks,
    /// unique span ids, and balanced begin/end pairs.
    #[test]
    fn concurrent_spans_produce_valid_jsonl_with_monotone_clocks() {
        let journal = TraceJournal::new(TraceClock::Logical);
        const WORKERS: usize = 8;
        const REQUESTS: usize = 25;
        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let journal = &journal;
                s.spawn(move || {
                    for r in 0..REQUESTS {
                        let req = journal.span("request", 0);
                        let mut fields = Json::Null;
                        fields.set("worker", w as u64);
                        fields.set("request", r as u64);
                        journal.event("request.meta", req.id(), fields);
                        {
                            let stage = journal.span("stage.repair", req.id());
                            journal.event("repair.done", stage.id(), Json::Null);
                        }
                    }
                });
            }
        });
        let text = journal.to_jsonl();
        let records = parse_jsonl(&text).expect("concurrent journal must parse");
        // 6 records per request: B(request) + meta + B(stage) + done + 2×E.
        assert_eq!(records.len(), WORKERS * REQUESTS * 6);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "logical clock is gap-free monotone");
            assert!(r.ts_us.is_none(), "logical journal carries no wall time");
        }
        // Span ids are unique per begin, every begin has exactly one end,
        // and the end never precedes its begin.
        let mut begin_at = std::collections::HashMap::new();
        let mut ends = std::collections::HashMap::new();
        for r in &records {
            match r.phase {
                TracePhase::SpanBegin => {
                    assert!(
                        begin_at.insert(r.span, r.seq).is_none(),
                        "span id {} begun twice",
                        r.span
                    );
                }
                TracePhase::SpanEnd => {
                    *ends.entry(r.span).or_insert(0u32) += 1;
                    assert!(begin_at[&r.span] < r.seq, "end precedes begin");
                }
                TracePhase::Event => {}
            }
        }
        assert_eq!(begin_at.len(), WORKERS * REQUESTS * 2);
        assert!(ends.values().all(|&n| n == 1), "every span ends once");
        assert_eq!(begin_at.len(), ends.len());
        // Nested stage spans point at a real enclosing request span.
        for r in records
            .iter()
            .filter(|r| r.phase == TracePhase::SpanBegin && r.name == "stage.repair")
        {
            assert!(begin_at.contains_key(&r.parent), "dangling parent");
        }
    }

    #[test]
    fn journal_is_thread_safe() {
        let journal = TraceJournal::new(TraceClock::Logical);
        std::thread::scope(|s| {
            for t in 0..4 {
                let journal = &journal;
                s.spawn(move || {
                    for i in 0..50 {
                        let mut fields = Json::Null;
                        fields.set("i", i as u64);
                        journal.event(&format!("worker.{t}"), 0, fields);
                    }
                });
            }
        });
        let records = journal.records();
        assert_eq!(records.len(), 200);
        // seq is gap-free regardless of interleaving.
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }
}
