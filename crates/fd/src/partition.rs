//! Partitioning rows by an attribute-list key.
//!
//! The classic way to check `X → A` over a table: hash every row by its
//! projection on `X`. Each bucket ("equivalence class" of the LHS) then
//! either agrees on `A` (satisfied) or not (violated). Both the violation
//! detector and the `Heu`/`Csm` baselines are built on this.

use std::collections::HashMap;

use relation::{AttrId, Symbol, Table};

/// Rows of a table grouped by their projection on a list of attributes.
#[derive(Debug)]
pub struct Partition {
    key_attrs: Vec<AttrId>,
    groups: HashMap<Vec<Symbol>, Vec<usize>>,
}

impl Partition {
    /// Group all rows of `table` by their values on `key_attrs`.
    pub fn build(table: &Table, key_attrs: &[AttrId]) -> Self {
        let mut groups: HashMap<Vec<Symbol>, Vec<usize>> = HashMap::new();
        let mut key = Vec::with_capacity(key_attrs.len());
        for i in 0..table.len() {
            key.clear();
            let row = table.row(i);
            key.extend(key_attrs.iter().map(|a| row[a.index()]));
            groups.entry(key.clone()).or_default().push(i);
        }
        Partition {
            key_attrs: key_attrs.to_vec(),
            groups,
        }
    }

    /// Attributes the partition is keyed on.
    pub fn key_attrs(&self) -> &[AttrId] {
        &self.key_attrs
    }

    /// Number of distinct keys.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Iterate `(key, rows)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Symbol], &[usize])> {
        self.groups
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
    }

    /// Rows sharing the given key, if any.
    pub fn group(&self, key: &[Symbol]) -> Option<&[usize]> {
        self.groups.get(key).map(|v| v.as_slice())
    }

    /// Groups with at least two rows — the only ones that can witness an FD
    /// violation.
    pub fn non_singleton_groups(&self) -> impl Iterator<Item = (&[Symbol], &[usize])> {
        self.iter().filter(|(_, rows)| rows.len() > 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn table() -> (Table, SymbolTable, Schema) {
        let schema = Schema::new("T", ["country", "capital"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        for row in [
            ["China", "Beijing"],
            ["China", "Shanghai"],
            ["Canada", "Ottawa"],
            ["China", "Beijing"],
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        (t, sy, schema)
    }

    #[test]
    fn groups_by_key() {
        let (t, sy, schema) = table();
        let p = Partition::build(&t, &[schema.attr("country").unwrap()]);
        assert_eq!(p.num_groups(), 2);
        let china = sy.get("China").unwrap();
        let rows = p.group(&[china]).unwrap();
        assert_eq!(rows, &[0, 1, 3]);
    }

    #[test]
    fn multi_attr_key() {
        let (t, sy, schema) = table();
        let p = Partition::build(
            &t,
            &[
                schema.attr("country").unwrap(),
                schema.attr("capital").unwrap(),
            ],
        );
        assert_eq!(p.num_groups(), 3);
        let key = [sy.get("China").unwrap(), sy.get("Beijing").unwrap()];
        assert_eq!(p.group(&key).unwrap(), &[0, 3]);
    }

    #[test]
    fn non_singletons_filter() {
        let (t, _, schema) = table();
        let p = Partition::build(&t, &[schema.attr("country").unwrap()]);
        let big: Vec<_> = p.non_singleton_groups().collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0].1.len(), 3);
    }

    #[test]
    fn empty_table_has_no_groups() {
        let schema = Schema::new("T", ["a"]).unwrap();
        let t = Table::new(schema.clone());
        let p = Partition::build(&t, &[schema.attr("a").unwrap()]);
        assert_eq!(p.num_groups(), 0);
    }
}
