//! Textual FD syntax: `A, B -> C, D`.
//!
//! This is the notation of the paper's FD tables (§7.1); the eval crate
//! declares the hosp/uis FDs in this form so they read like the paper.

use relation::Schema;

use crate::{Fd, FdError};

/// Parse one FD in `LHS -> RHS` form, attributes comma-separated.
pub fn parse_fd(schema: &Schema, text: &str) -> Result<Fd, FdError> {
    let (lhs, rhs) = text
        .split_once("->")
        .ok_or_else(|| FdError::Syntax(text.to_string()))?;
    let names = |side: &str| -> Vec<String> {
        side.split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect()
    };
    let lhs_names = names(lhs);
    let rhs_names = names(rhs);
    if lhs_names.is_empty() || rhs_names.is_empty() {
        return Err(FdError::Syntax(text.to_string()));
    }
    Fd::from_names(
        schema,
        lhs_names.iter().map(|s| s.as_str()),
        rhs_names.iter().map(|s| s.as_str()),
    )
}

/// Parse a newline-separated list of FDs, ignoring blank lines and `#`
/// comments.
pub fn parse_fds(schema: &Schema, text: &str) -> Result<Vec<Fd>, FdError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| parse_fd(schema, l))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("R", ["ssn", "fname", "zip", "state", "city"]).unwrap()
    }

    #[test]
    fn parses_single_fd() {
        let s = schema();
        let fd = parse_fd(&s, "zip -> state, city").unwrap();
        assert_eq!(fd.display(&s), "zip -> state, city");
    }

    #[test]
    fn parses_multi_lhs() {
        let s = schema();
        let fd = parse_fd(&s, "fname, zip -> ssn").unwrap();
        assert_eq!(fd.lhs().len(), 2);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let s = schema();
        let fd = parse_fd(&s, "  zip   ->state ").unwrap();
        assert_eq!(fd.display(&s), "zip -> state");
    }

    #[test]
    fn missing_arrow_is_syntax_error() {
        let s = schema();
        assert!(matches!(parse_fd(&s, "zip state"), Err(FdError::Syntax(_))));
    }

    #[test]
    fn empty_side_is_syntax_error() {
        let s = schema();
        assert!(matches!(parse_fd(&s, "-> state"), Err(FdError::Syntax(_))));
        assert!(matches!(parse_fd(&s, "zip ->"), Err(FdError::Syntax(_))));
    }

    #[test]
    fn unknown_attribute_propagates() {
        let s = schema();
        assert!(matches!(
            parse_fd(&s, "zap -> state"),
            Err(FdError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn parses_fd_list_with_comments() {
        let s = schema();
        let text = "# uis FDs\nssn -> fname\n\nzip -> state, city\n";
        let fds = parse_fds(&s, text).unwrap();
        assert_eq!(fds.len(), 2);
    }
}
