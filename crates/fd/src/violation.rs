//! FD violation detection.

use std::collections::HashMap;

use relation::{AttrId, Symbol, Table};

use crate::partition::Partition;
use crate::Fd;

/// One violated `(X = key) → A` group: the LHS key, the RHS attribute, and
/// the distinct RHS values observed with the rows carrying each.
#[derive(Debug, Clone)]
pub struct Violation {
    /// LHS key values, aligned with the FD's `lhs()` attribute order.
    pub key: Vec<Symbol>,
    /// The single RHS attribute this violation concerns.
    pub rhs_attr: AttrId,
    /// Distinct RHS values and the row indices carrying each value.
    pub values: Vec<(Symbol, Vec<usize>)>,
}

impl Violation {
    /// Total number of rows involved.
    pub fn num_rows(&self) -> usize {
        self.values.iter().map(|(_, rows)| rows.len()).sum()
    }

    /// The RHS value carried by the most rows (ties broken by smallest
    /// symbol for determinism). This is the majority value the `Heu`
    /// baseline repairs towards.
    pub fn majority_value(&self) -> Symbol {
        self.values
            .iter()
            .max_by(|a, b| a.1.len().cmp(&b.1.len()).then(b.0.cmp(&a.0)))
            .map(|(v, _)| *v)
            .expect("violation has at least two values")
    }
}

/// Detect all violations of `fd` in `table`.
///
/// Multi-RHS FDs are checked per RHS attribute; a group appears once per RHS
/// attribute on which it disagrees.
pub fn detect_violations(table: &Table, fd: &Fd) -> Vec<Violation> {
    let partition = Partition::build(table, fd.lhs());
    detect_violations_with_partition(table, fd, &partition)
}

/// Detect violations reusing a prebuilt LHS partition (the baselines rebuild
/// repairs iteratively and share the partition across RHS attributes).
pub fn detect_violations_with_partition(
    table: &Table,
    fd: &Fd,
    partition: &Partition,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for (key, rows) in partition.non_singleton_groups() {
        for &rhs_attr in fd.rhs() {
            let mut by_value: HashMap<Symbol, Vec<usize>> = HashMap::new();
            for &r in rows {
                by_value.entry(table.cell(r, rhs_attr)).or_default().push(r);
            }
            if by_value.len() > 1 {
                let mut values: Vec<(Symbol, Vec<usize>)> = by_value.into_iter().collect();
                values.sort_by_key(|(v, _)| *v);
                out.push(Violation {
                    key: key.to_vec(),
                    rhs_attr,
                    values,
                });
            }
        }
    }
    // Deterministic order for tests and reproducible baselines.
    out.sort_by(|a, b| a.key.cmp(&b.key).then(a.rhs_attr.cmp(&b.rhs_attr)));
    out
}

/// True when `table` satisfies `fd`.
pub fn satisfies(table: &Table, fd: &Fd) -> bool {
    detect_violations(table, fd).is_empty()
}

/// True when `table` satisfies every FD in `fds`.
pub fn satisfies_all(table: &Table, fds: &[Fd]) -> bool {
    fds.iter().all(|fd| satisfies(table, fd))
}

/// Count violating `(group, rhs-attr)` pairs across a set of FDs.
pub fn count_violations(table: &Table, fds: &[Fd]) -> usize {
    fds.iter()
        .map(|fd| detect_violations(table, fd).len())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    /// The Fig. 1 Travel instance from the paper, errors included.
    fn travel() -> (Table, SymbolTable, Schema) {
        let schema = Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        for row in [
            ["George", "China", "Beijing", "Beijing", "SIGMOD"],
            ["Ian", "China", "Shanghai", "Hongkong", "ICDE"],
            ["Peter", "China", "Tokyo", "Tokyo", "ICDE"],
            ["Mike", "Canada", "Toronto", "Toronto", "VLDB"],
        ] {
            t.push_strs(&mut sy, &row).unwrap();
        }
        (t, sy, schema)
    }

    #[test]
    fn detects_country_capital_violation() {
        let (t, sy, schema) = travel();
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        let v = detect_violations(&t, &fd);
        // China appears with Beijing/Shanghai/Tokyo: one violated group.
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].key, vec![sy.get("China").unwrap()]);
        assert_eq!(v[0].values.len(), 3);
        assert_eq!(v[0].num_rows(), 3);
    }

    #[test]
    fn clean_table_satisfies() {
        let schema = Schema::new("Cap", ["country", "capital"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["Japan", "Tokyo"]).unwrap();
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        assert!(satisfies(&t, &fd));
        assert_eq!(count_violations(&t, &[fd]), 0);
    }

    #[test]
    fn multi_rhs_reports_each_attr() {
        let schema = Schema::new("R", ["zip", "state", "city"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        t.push_strs(&mut sy, &["10001", "NY", "New York"]).unwrap();
        t.push_strs(&mut sy, &["10001", "NJ", "Newark"]).unwrap();
        let fd = Fd::from_names(&schema, ["zip"], ["state", "city"]).unwrap();
        let v = detect_violations(&t, &fd);
        assert_eq!(v.len(), 2);
        let attrs: Vec<AttrId> = v.iter().map(|x| x.rhs_attr).collect();
        assert!(attrs.contains(&schema.attr("state").unwrap()));
        assert!(attrs.contains(&schema.attr("city").unwrap()));
    }

    #[test]
    fn majority_value_picks_most_frequent() {
        let schema = Schema::new("R", ["k", "v"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        for v in ["a", "a", "b"] {
            t.push_strs(&mut sy, &["k1", v]).unwrap();
        }
        let fd = Fd::from_names(&schema, ["k"], ["v"]).unwrap();
        let viol = detect_violations(&t, &fd);
        assert_eq!(viol[0].majority_value(), sy.get("a").unwrap());
    }

    #[test]
    fn satisfies_all_over_multiple_fds() {
        let (t, _, schema) = travel();
        let fd1 = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        let fd2 = Fd::from_names(&schema, ["name"], ["conf"]).unwrap();
        assert!(!satisfies_all(&t, &[fd1, fd2.clone()]));
        assert!(satisfies_all(&t, &[fd2]));
    }

    #[test]
    fn violations_are_deterministically_ordered() {
        let (t, _, schema) = travel();
        let fd = Fd::from_names(&schema, ["country"], ["capital"]).unwrap();
        let a = detect_violations(&t, &fd);
        let b = detect_violations(&t, &fd);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.values, y.values);
        }
    }
}
