//! Functional dependencies over [`relation`] tables.
//!
//! The paper uses FDs in two roles:
//!
//! 1. **Rule generation** (§7.1): fixing rules are seeded from FD violations,
//!    so we need violation detection.
//! 2. **Baselines**: `Heu` [Bohannon et al. '05] and `Csm` [Beskales et al.
//!    '10] repair FD violations directly (implemented in `crates/baselines`
//!    on top of the partition machinery here).
//!
//! Violation detection uses the standard *partition* technique: group rows by
//! their LHS value vector; a group violates `X → A` when it carries more than
//! one distinct `A` value. This is the two-tuple violation semantics of the
//! paper ("the others need to consider a combination of two tuples", §7.2).
//!
//! A minimal conditional-FD ([`cfd::Cfd`]) extension is included because the
//! paper repeatedly positions fixing rules against CFDs; the eval crate uses
//! it only for documentation-grade comparisons.

pub mod cfd;
pub mod closure;
pub mod parse;
pub mod partition;
pub mod violation;

use relation::{AttrId, AttrSet, Schema};

/// A functional dependency `X → Y` over one schema.
///
/// `Y` may list several right-hand-side attributes, matching the paper's
/// hosp/uis FD tables (e.g. `PN → HN, address1, …`). Algorithms that need
/// single-RHS FDs call [`Fd::split_rhs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fd {
    lhs: Vec<AttrId>,
    rhs: Vec<AttrId>,
}

/// Errors building or parsing FDs.
#[derive(Debug, PartialEq, Eq)]
pub enum FdError {
    /// LHS or RHS was empty.
    Empty,
    /// Attribute appears on both sides.
    Overlap(String),
    /// Attribute name unknown to the schema.
    UnknownAttribute(String),
    /// Textual form was malformed.
    Syntax(String),
}

impl std::fmt::Display for FdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FdError::Empty => write!(f, "FD must have non-empty LHS and RHS"),
            FdError::Overlap(a) => write!(f, "attribute `{a}` appears on both sides of the FD"),
            FdError::UnknownAttribute(a) => write!(f, "unknown attribute `{a}`"),
            FdError::Syntax(s) => write!(f, "malformed FD `{s}`: expected `A, B -> C, D`"),
        }
    }
}

impl std::error::Error for FdError {}

impl Fd {
    /// Build an FD from attribute ids, validating shape.
    pub fn new(schema: &Schema, lhs: Vec<AttrId>, rhs: Vec<AttrId>) -> Result<Self, FdError> {
        if lhs.is_empty() || rhs.is_empty() {
            return Err(FdError::Empty);
        }
        let lset = AttrSet::from_iter(lhs.iter().copied());
        for &r in &rhs {
            if lset.contains(r) {
                return Err(FdError::Overlap(schema.attr_name(r).to_string()));
            }
        }
        Ok(Fd { lhs, rhs })
    }

    /// Build an FD from attribute names.
    pub fn from_names<'a>(
        schema: &Schema,
        lhs: impl IntoIterator<Item = &'a str>,
        rhs: impl IntoIterator<Item = &'a str>,
    ) -> Result<Self, FdError> {
        let resolve = |names: &mut dyn Iterator<Item = &'a str>| -> Result<Vec<AttrId>, FdError> {
            names
                .map(|n| {
                    schema
                        .attr(n)
                        .ok_or_else(|| FdError::UnknownAttribute(n.to_string()))
                })
                .collect()
        };
        let lhs = resolve(&mut lhs.into_iter())?;
        let rhs = resolve(&mut rhs.into_iter())?;
        Fd::new(schema, lhs, rhs)
    }

    /// Left-hand-side attributes.
    pub fn lhs(&self) -> &[AttrId] {
        &self.lhs
    }

    /// Right-hand-side attributes.
    pub fn rhs(&self) -> &[AttrId] {
        &self.rhs
    }

    /// LHS as a bitset.
    pub fn lhs_set(&self) -> AttrSet {
        AttrSet::from_iter(self.lhs.iter().copied())
    }

    /// RHS as a bitset.
    pub fn rhs_set(&self) -> AttrSet {
        AttrSet::from_iter(self.rhs.iter().copied())
    }

    /// Split a multi-RHS FD into single-RHS FDs (`X → A` for each `A ∈ Y`).
    pub fn split_rhs(&self) -> impl Iterator<Item = Fd> + '_ {
        self.rhs.iter().map(move |&r| Fd {
            lhs: self.lhs.clone(),
            rhs: vec![r],
        })
    }

    /// Render with attribute names, e.g. `country -> capital`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> String {
        let side = |ids: &[AttrId]| {
            ids.iter()
                .map(|&a| schema.attr_name(a))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!("{} -> {}", side(&self.lhs), side(&self.rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new("Travel", ["name", "country", "capital", "city", "conf"]).unwrap()
    }

    #[test]
    fn build_from_names() {
        let s = schema();
        let fd = Fd::from_names(&s, ["country"], ["capital"]).unwrap();
        assert_eq!(fd.lhs(), &[s.attr("country").unwrap()]);
        assert_eq!(fd.rhs(), &[s.attr("capital").unwrap()]);
    }

    #[test]
    fn empty_sides_rejected() {
        let s = schema();
        assert_eq!(
            Fd::from_names(&s, [], ["capital"]).unwrap_err(),
            FdError::Empty
        );
        assert_eq!(
            Fd::from_names(&s, ["country"], []).unwrap_err(),
            FdError::Empty
        );
    }

    #[test]
    fn overlap_rejected() {
        let s = schema();
        let err = Fd::from_names(&s, ["country"], ["country"]).unwrap_err();
        assert_eq!(err, FdError::Overlap("country".into()));
    }

    #[test]
    fn unknown_attr_rejected() {
        let s = schema();
        let err = Fd::from_names(&s, ["countri"], ["capital"]).unwrap_err();
        assert_eq!(err, FdError::UnknownAttribute("countri".into()));
    }

    #[test]
    fn split_rhs_yields_single_rhs_fds() {
        let s = schema();
        let fd = Fd::from_names(&s, ["country"], ["capital", "city"]).unwrap();
        let parts: Vec<Fd> = fd.split_rhs().collect();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].rhs(), &[s.attr("capital").unwrap()]);
        assert_eq!(parts[1].rhs(), &[s.attr("city").unwrap()]);
    }

    #[test]
    fn display_uses_names() {
        let s = schema();
        let fd = Fd::from_names(&s, ["country", "city"], ["conf"]).unwrap();
        assert_eq!(fd.display(&s), "country, city -> conf");
    }
}
