//! Conditional functional dependencies (CFDs), minimal form.
//!
//! The paper contrasts fixing rules with CFDs [Fan et al., TODS'08]: a CFD
//! `(X → B, tp)` constrains only tuples matching a constant/wildcard pattern
//! `tp` over `X ∪ {B}`. CFDs *detect* errors but do not say how to fix them —
//! which is exactly the gap fixing rules close. We implement single-tuple
//! (constant) CFD checking so the eval/docs can demonstrate that contrast.

use relation::{AttrId, Symbol, Table};

/// One pattern cell: a required constant or a wildcard (`_` in the
/// literature).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternCell {
    /// Matches any value.
    Wildcard,
    /// Matches exactly this value.
    Const(Symbol),
}

/// A constant CFD `(X → B, (tp[X] ∥ tp[B]))`.
///
/// When every `X` cell of a tuple matches the pattern, the `B` cell must
/// match `rhs_pattern`. With all-wildcard patterns this degenerates to a
/// plain FD checked tuple-by-tuple against a constant table, so we keep the
/// constant-only single-tuple semantics that suffice for error detection.
#[derive(Debug, Clone)]
pub struct Cfd {
    /// LHS attributes with their pattern cells.
    pub lhs: Vec<(AttrId, PatternCell)>,
    /// RHS attribute.
    pub rhs_attr: AttrId,
    /// RHS pattern cell.
    pub rhs_pattern: PatternCell,
}

impl Cfd {
    /// Does the tuple match the LHS pattern?
    pub fn lhs_matches(&self, row: &[Symbol]) -> bool {
        self.lhs.iter().all(|&(a, p)| match p {
            PatternCell::Wildcard => true,
            PatternCell::Const(c) => row[a.index()] == c,
        })
    }

    /// A tuple *violates* a constant CFD when its LHS matches but its RHS
    /// does not.
    pub fn violates(&self, row: &[Symbol]) -> bool {
        if !self.lhs_matches(row) {
            return false;
        }
        match self.rhs_pattern {
            PatternCell::Wildcard => false,
            PatternCell::Const(c) => row[self.rhs_attr.index()] != c,
        }
    }

    /// Indices of rows violating this CFD.
    pub fn violating_rows(&self, table: &Table) -> Vec<usize> {
        (0..table.len())
            .filter(|&i| self.violates(table.row(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{Schema, SymbolTable};

    fn setup() -> (Table, SymbolTable, Schema) {
        let schema = Schema::new("T", ["country", "capital"]).unwrap();
        let mut sy = SymbolTable::new();
        let mut t = Table::new(schema.clone());
        t.push_strs(&mut sy, &["China", "Beijing"]).unwrap();
        t.push_strs(&mut sy, &["China", "Shanghai"]).unwrap();
        t.push_strs(&mut sy, &["Canada", "Shanghai"]).unwrap();
        (t, sy, schema)
    }

    #[test]
    fn constant_cfd_flags_wrong_capital() {
        let (t, mut sy, schema) = setup();
        let cfd = Cfd {
            lhs: vec![(
                schema.attr("country").unwrap(),
                PatternCell::Const(sy.intern("China")),
            )],
            rhs_attr: schema.attr("capital").unwrap(),
            rhs_pattern: PatternCell::Const(sy.intern("Beijing")),
        };
        assert_eq!(cfd.violating_rows(&t), vec![1]);
    }

    #[test]
    fn wildcard_lhs_matches_everything() {
        let (t, mut sy, schema) = setup();
        let cfd = Cfd {
            lhs: vec![(schema.attr("country").unwrap(), PatternCell::Wildcard)],
            rhs_attr: schema.attr("capital").unwrap(),
            rhs_pattern: PatternCell::Const(sy.intern("Beijing")),
        };
        assert_eq!(cfd.violating_rows(&t), vec![1, 2]);
    }

    #[test]
    fn wildcard_rhs_never_violates() {
        let (t, _, schema) = setup();
        let cfd = Cfd {
            lhs: vec![(schema.attr("country").unwrap(), PatternCell::Wildcard)],
            rhs_attr: schema.attr("capital").unwrap(),
            rhs_pattern: PatternCell::Wildcard,
        };
        assert!(cfd.violating_rows(&t).is_empty());
    }

    #[test]
    fn cfd_detects_but_does_not_repair() {
        // The doc-level contrast: a CFD flags row 1, but carries no action.
        // (Compile-time observation: `Cfd` has no apply method.)
        let (t, mut sy, schema) = setup();
        let cfd = Cfd {
            lhs: vec![(
                schema.attr("country").unwrap(),
                PatternCell::Const(sy.intern("China")),
            )],
            rhs_attr: schema.attr("capital").unwrap(),
            rhs_pattern: PatternCell::Const(sy.intern("Beijing")),
        };
        let flagged = cfd.violating_rows(&t);
        assert_eq!(flagged.len(), 1);
    }
}
