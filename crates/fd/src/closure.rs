//! Classical FD reasoning: attribute closure, implication, minimal cover.
//!
//! Used to sanity-check the datasets' FD lists (e.g. the paper's
//! `PN, MC → stateAvg` is implied by `PN → state` + `state, MC → stateAvg`)
//! and to let callers de-duplicate FD inputs before seeding rules.

use relation::{AttrSet, Schema};

use crate::Fd;

/// The closure `X⁺` of an attribute set under a list of FDs (Armstrong's
/// axioms via the standard fixpoint iteration).
pub fn attribute_closure(start: AttrSet, fds: &[Fd]) -> AttrSet {
    let mut closure = start;
    let mut changed = true;
    while changed {
        changed = false;
        for fd in fds {
            if fd.lhs_set().is_subset(closure) && !fd.rhs_set().is_subset(closure) {
                closure.union_with(fd.rhs_set());
                changed = true;
            }
        }
    }
    closure
}

/// Does `fds ⊨ fd` (the FD is logically implied)?
pub fn implies_fd(fds: &[Fd], fd: &Fd) -> bool {
    fd.rhs_set().is_subset(attribute_closure(fd.lhs_set(), fds))
}

/// Is attribute set `x` a superkey of the schema under `fds`?
pub fn is_superkey(schema: &Schema, x: AttrSet, fds: &[Fd]) -> bool {
    let all = AttrSet::from_iter(schema.attr_ids());
    all.is_subset(attribute_closure(x, fds))
}

/// A minimal cover of `fds`: single-RHS, no redundant FDs, no redundant
/// LHS attributes. Canonical-form computation, deterministic output order.
pub fn minimal_cover(schema: &Schema, fds: &[Fd]) -> Vec<Fd> {
    // 1. Single-RHS decomposition.
    let mut cover: Vec<Fd> = fds.iter().flat_map(|fd| fd.split_rhs()).collect();

    // 2. Remove extraneous LHS attributes: A is extraneous in X → B when
    // (X \ A)⁺ under the current cover still contains B.
    let mut i = 0;
    while i < cover.len() {
        let mut lhs: Vec<_> = cover[i].lhs().to_vec();
        let rhs = cover[i].rhs()[0];
        let mut k = 0;
        while lhs.len() > 1 && k < lhs.len() {
            let mut reduced = lhs.clone();
            reduced.remove(k);
            let closure = attribute_closure(AttrSet::from_iter(reduced.iter().copied()), &cover);
            if closure.contains(rhs) {
                lhs = reduced;
            } else {
                k += 1;
            }
        }
        if lhs.len() != cover[i].lhs().len() {
            cover[i] = Fd::new(schema, lhs, vec![rhs]).expect("reduced FD is well-formed");
        }
        i += 1;
    }

    // 3. Remove redundant FDs: fd is redundant when the rest implies it.
    let mut i = 0;
    while i < cover.len() {
        let candidate = cover.remove(i);
        if implies_fd(&cover, &candidate) {
            // drop it, do not advance
        } else {
            cover.insert(i, candidate);
            i += 1;
        }
    }

    // Deterministic output.
    cover.sort_by(|a, b| a.lhs().cmp(b.lhs()).then(a.rhs().cmp(b.rhs())));
    cover.dedup();
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_fds;

    fn schema() -> Schema {
        Schema::new("R", ["a", "b", "c", "d", "e"]).unwrap()
    }

    fn attrs(schema: &Schema, names: &[&str]) -> AttrSet {
        AttrSet::from_iter(names.iter().map(|n| schema.attr(n).unwrap()))
    }

    #[test]
    fn closure_fixpoint() {
        let s = schema();
        let fds = parse_fds(&s, "a -> b\nb -> c\nc, d -> e").unwrap();
        let c = attribute_closure(attrs(&s, &["a"]), &fds);
        // a⁺ = {a, b, c}; e needs d too.
        assert_eq!(c, attrs(&s, &["a", "b", "c"]));
        let c2 = attribute_closure(attrs(&s, &["a", "d"]), &fds);
        assert_eq!(c2, attrs(&s, &["a", "b", "c", "d", "e"]));
    }

    #[test]
    fn transitivity_is_implied() {
        let s = schema();
        let fds = parse_fds(&s, "a -> b\nb -> c").unwrap();
        let derived = parse_fds(&s, "a -> c").unwrap().remove(0);
        assert!(implies_fd(&fds, &derived));
        let not_derived = parse_fds(&s, "c -> a").unwrap().remove(0);
        assert!(!implies_fd(&fds, &not_derived));
    }

    #[test]
    fn superkey_detection() {
        let s = schema();
        let fds = parse_fds(&s, "a -> b, c\nc -> d, e").unwrap();
        assert!(is_superkey(&s, attrs(&s, &["a"]), &fds));
        assert!(!is_superkey(&s, attrs(&s, &["c"]), &fds));
    }

    #[test]
    fn minimal_cover_strips_extraneous_lhs() {
        let s = schema();
        // In (a, b → c) with a → b, b is extraneous? No — (a)⁺ ∋ b, c...
        // a → b gives (a)⁺ = {a, b}, and with ab → c the closure reaches c,
        // so ab → c reduces to a → c.
        let fds = parse_fds(&s, "a -> b\na, b -> c").unwrap();
        let cover = minimal_cover(&s, &fds);
        let rendered: Vec<String> = cover.iter().map(|f| f.display(&s)).collect();
        assert!(rendered.contains(&"a -> b".to_string()), "{rendered:?}");
        assert!(rendered.contains(&"a -> c".to_string()), "{rendered:?}");
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn minimal_cover_drops_redundant_fds() {
        let s = schema();
        let fds = parse_fds(&s, "a -> b\nb -> c\na -> c").unwrap();
        let cover = minimal_cover(&s, &fds);
        assert_eq!(cover.len(), 2);
        // Every original FD is still implied.
        for fd in &fds {
            assert!(implies_fd(&cover, fd));
        }
    }

    #[test]
    fn cover_preserves_logical_content_both_ways() {
        let s = schema();
        let fds = parse_fds(&s, "a -> b, c\nb -> c\nc, d -> e\na, d -> e").unwrap();
        let cover = minimal_cover(&s, &fds);
        for fd in &fds {
            assert!(implies_fd(&cover, fd), "cover lost {}", fd.display(&s));
        }
        for fd in &cover {
            assert!(implies_fd(&fds, fd), "cover invented {}", fd.display(&s));
        }
    }

    #[test]
    fn paper_hosp_fd4_is_implied_by_fd1_and_fd5() {
        // PN → state (part of FD1) plus (state, MC) → stateAvg (FD5) imply
        // (PN, MC) → stateAvg (FD4) — a nice consistency check on the
        // paper's FD table.
        let s = Schema::new("hosp", ["PN", "state", "MC", "stateAvg"]).unwrap();
        let fds = parse_fds(&s, "PN -> state\nstate, MC -> stateAvg").unwrap();
        let fd4 = parse_fds(&s, "PN, MC -> stateAvg").unwrap().remove(0);
        assert!(implies_fd(&fds, &fd4));
    }
}
