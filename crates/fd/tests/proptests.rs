//! Property-based tests for the FD substrate.

use proptest::prelude::*;

use fd::closure::{attribute_closure, implies_fd, minimal_cover};
use fd::violation::{detect_violations, satisfies};
use fd::Fd;
use relation::{AttrId, AttrSet, Schema, Symbol, Table};

const ARITY: usize = 5;

fn schema() -> Schema {
    Schema::new("R", ["a0", "a1", "a2", "a3", "a4"]).unwrap()
}

/// Random single-RHS FDs over the 5-attribute schema.
fn fds() -> impl Strategy<Value = Vec<Fd>> {
    proptest::collection::vec(
        (
            proptest::collection::hash_set(0u16..ARITY as u16, 1..3),
            0u16..ARITY as u16,
        ),
        0..6,
    )
    .prop_map(|raw| {
        let s = schema();
        raw.into_iter()
            .filter_map(|(lhs, rhs)| {
                if lhs.contains(&rhs) {
                    return None;
                }
                Fd::new(&s, lhs.into_iter().map(AttrId).collect(), vec![AttrId(rhs)]).ok()
            })
            .collect()
    })
}

fn attr_sets() -> impl Strategy<Value = AttrSet> {
    proptest::collection::hash_set(0u16..ARITY as u16, 0..ARITY)
        .prop_map(|s| AttrSet::from_iter(s.into_iter().map(AttrId)))
}

proptest! {
    /// Closure is extensive, monotone, and idempotent.
    #[test]
    fn closure_laws(fds in fds(), x in attr_sets(), y in attr_sets()) {
        let cx = attribute_closure(x, &fds);
        prop_assert!(x.is_subset(cx), "extensive");
        prop_assert_eq!(attribute_closure(cx, &fds), cx, "idempotent");
        if x.is_subset(y) {
            prop_assert!(cx.is_subset(attribute_closure(y, &fds)), "monotone");
        }
    }

    /// A minimal cover is logically equivalent to the input.
    #[test]
    fn minimal_cover_equivalence(fds in fds()) {
        let s = schema();
        let cover = minimal_cover(&s, &fds);
        for fd in &fds {
            prop_assert!(implies_fd(&cover, fd), "cover lost {}", fd.display(&s));
        }
        for fd in &cover {
            prop_assert!(implies_fd(&fds, fd), "cover invented {}", fd.display(&s));
        }
        // Covers are themselves non-redundant: removing any FD loses
        // information.
        for i in 0..cover.len() {
            let mut reduced = cover.clone();
            let removed = reduced.remove(i);
            prop_assert!(
                !implies_fd(&reduced, &removed),
                "cover still redundant: {}",
                removed.display(&s)
            );
        }
    }

    /// Violation detection matches the brute-force pairwise definition:
    /// some pair of rows agrees on the LHS and disagrees on the RHS.
    #[test]
    fn violations_match_bruteforce(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u32..4, ARITY..=ARITY), 0..20),
        lhs in proptest::collection::hash_set(0u16..ARITY as u16, 1..3),
        rhs in 0u16..ARITY as u16,
    ) {
        if lhs.contains(&rhs) {
            return Ok(());
        }
        let s = schema();
        let fd = Fd::new(&s, lhs.iter().copied().map(AttrId).collect(), vec![AttrId(rhs)])
            .unwrap();
        let mut t = Table::new(s);
        for r in &rows {
            let syms: Vec<Symbol> = r.iter().map(|&v| Symbol(v)).collect();
            t.push_row(&syms).unwrap();
        }
        let brute = rows.iter().enumerate().any(|(i, a)| {
            rows.iter().skip(i + 1).any(|b| {
                lhs.iter().all(|&k| a[k as usize] == b[k as usize])
                    && a[rhs as usize] != b[rhs as usize]
            })
        });
        prop_assert_eq!(!satisfies(&t, &fd), brute);
        // Each reported violation really is one.
        for v in detect_violations(&t, &fd) {
            prop_assert!(v.values.len() > 1);
            prop_assert!(v.num_rows() > 1);
        }
    }
}
